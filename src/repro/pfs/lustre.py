"""Cost model of a Lustre-like striped object store.

Pure functions mapping (machine, bytes, process counts, striping) to
modeled seconds.  These formulas are the single source of truth for
filesystem timing: the functional :mod:`repro.pfs.hdf5` layer charges
them to virtual clocks, and the Table-II analytic driver evaluates
them directly at the paper's data sizes and core counts.

Calibration targets (paper Table II):

* conventional (one core, serial HDF5, chunked re-reads):
  ``n_chunks * (open + seek) + bytes / serial_read_gbs`` —
  ≈ 205 s at 16 GB up to ≈ 11,732 s at 1 TB ("beyond 1 TB ... crossed
  beyond 5 hours").
* randomized Tier-1 (parallel hyperslab read, file striped over 160
  OSTs): ``open + bytes / (effective_stripes * ost_bw)`` — seconds
  even at 8 TB.  The paper's 16 GB file was *not* striped, which is
  why its read is slower than the 128 GB one; ``effective_stripes``
  models that policy.
* conventional distribution (root scatters everything):
  root-serialized, so ≈ ``bytes / net_bw`` — 158 s at 1 TB.
* randomized Tier-2 shuffle (one-sided random Gets): per-core bytes
  over the effective random-RMA bandwidth — the 2.6–5.7 s plateau of
  Table II (per-core bytes are constant along the weak-scaling
  diagonal).  Within a single node the shuffle moves through shared
  memory instead.
"""

from __future__ import annotations

import math

from repro.simmpi.machine import MachineModel

__all__ = [
    "effective_stripes",
    "parallel_read_time",
    "serial_chunked_read_time",
    "conventional_distribution_time",
    "randomized_shuffle_time",
]

#: Datasets below this size are left unstriped (stripe_count = 1),
#: reproducing the paper's remark that the 16 GB file "was not striped
#: into OSTs" and therefore read *slower* than larger striped files.
STRIPE_THRESHOLD_BYTES = 64 * 1024**3


def effective_stripes(machine: MachineModel, nbytes: int) -> int:
    """Stripe count the file would be created with (site policy model)."""
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if nbytes < STRIPE_THRESHOLD_BYTES:
        return 1
    return machine.ost_count


def parallel_read_time(
    machine: MachineModel,
    nbytes: int,
    nreaders: int,
    *,
    stripe_count: int | None = None,
) -> float:
    """Tier-1 collective read: ``nreaders`` processes, striped file.

    Aggregate bandwidth is limited by the smaller of reader count and
    stripe count times the per-OST rate; a single shared open is paid
    once.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if nreaders < 1:
        raise ValueError("nreaders must be >= 1")
    stripes = effective_stripes(machine, nbytes) if stripe_count is None else stripe_count
    if stripes < 1:
        raise ValueError("stripe_count must be >= 1")
    agg_bw = min(nreaders, stripes) * machine.ost_bw_gbs * 1e9
    return machine.file_open_s + nbytes / agg_bw


def serial_chunked_read_time(machine: MachineModel, nbytes: int) -> float:
    """Conventional read: one core, chunk at a time, re-opening the file.

    Cost = per-chunk (open + seek) overhead plus the bytes at the
    single-stream serial-HDF5 bandwidth.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if nbytes == 0:
        return 0.0
    n_chunks = math.ceil(nbytes / machine.chunk_bytes)
    overhead = n_chunks * (machine.file_open_s + machine.seek_s)
    return overhead + nbytes / (machine.serial_read_gbs * 1e9)


def conventional_distribution_time(
    machine: MachineModel, nbytes: int, ncores: int
) -> float:
    """Conventional distribution: the root scatters the full dataset.

    The root's injection link serializes the transfer, so the time is
    essentially ``bytes / net_bw`` regardless of the core count (plus
    a binomial-tree latency term).
    """
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if ncores < 1:
        raise ValueError("ncores must be >= 1")
    if ncores == 1:
        return 0.0
    latency = math.ceil(math.log2(ncores)) * machine.net_latency_s
    return latency + ((ncores - 1) / ncores) * nbytes / (machine.net_bw_gbs * 1e9)


def randomized_shuffle_time(machine: MachineModel, nbytes: int, ncores: int) -> float:
    """Tier-2 randomized shuffle: every core Gets its rows from random owners.

    Per-core volume is ``nbytes / ncores``; across nodes the random
    small-message Gets run at the (much lower) effective random-RMA
    bandwidth, within one node they move at memory bandwidth.  Along
    the paper's weak-scaling diagonal the per-core volume is constant,
    which reproduces Table II's flat 2.6–5.7 s distribution column.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if ncores < 1:
        raise ValueError("ncores must be >= 1")
    per_core = nbytes / ncores
    if ncores <= machine.cores_per_node:
        bw = machine.mem_bw_gbs * 1e9
    else:
        bw = machine.rma_random_bw_gbs * 1e9
    latency = math.ceil(math.log2(ncores)) * machine.net_latency_s if ncores > 1 else 0.0
    return latency + per_core / bw
