"""Fault injection, checkpoint/restart, and recovery (``repro.resilience``).

The paper's runs occupy thousands of Cori nodes for hours; at that
scale node failure is routine, and an inference job that cannot
survive one wastes machine-days.  This package adds the three coupled
pieces a resilient UoI run needs, all built on the simulated substrate
so every behavior is testable deterministically:

1. **Fault injection** (:mod:`repro.resilience.faults`) — a declarative
   :class:`FaultPlan` (rank crashes at a virtual time or collective
   count, message delays, transient RMA Get failures) that
   ``run_spmd(fault_plan=...)`` wires into the communicator, window,
   and executor hooks.  An injected crash kills one rank with
   :class:`~repro.simmpi.comm.SimulatedRankFailure`; peers unwind, and
   the job reports the death on ``SpmdResult.failed_ranks`` instead of
   raising.
2. **Checkpointing** (:mod:`repro.resilience.checkpoint`) — an atomic,
   checksummed :class:`CheckpointStore` of completed (bootstrap, λ)
   subproblems, buffered at a configurable cadence through
   :class:`CheckpointPlan` / :class:`CheckpointSession` and attached
   to every UoI driver as one execution-engine hook
   (:class:`CheckpointHook` — see :mod:`repro.engine`).
3. **Recovery** (:mod:`repro.resilience.recovery`) —
   :func:`run_with_recovery` relaunches a killed job against the same
   store; bootstrap replay from the shared ``random_state`` plus
   checkpoint skipping makes the restarted run bitwise identical to an
   uninterrupted one.

CLI surface: ``repro run <experiment> --checkpoint-dir D --resume``
and ``repro faults`` (see :mod:`repro.cli`); the cadence/overhead
trade-off is measured by ``benchmarks/bench_ablation_checkpoint.py``.
"""

from repro.simmpi.comm import SimulatedRankFailure
from repro.simmpi.window import RmaError
from repro.resilience.faults import (
    CrashFault,
    DelayFault,
    TransientGetFault,
    FaultPlan,
    RankFaultInjector,
)
from repro.resilience.checkpoint import (
    CheckpointCorruption,
    CheckpointStore,
    CheckpointPlan,
    CheckpointSession,
    CheckpointHook,
)
from repro.resilience.recovery import (
    AttemptRecord,
    RecoveryOutcome,
    run_with_recovery,
    store_progress,
    recovered_loss_table,
)

__all__ = [
    "SimulatedRankFailure",
    "RmaError",
    "CrashFault",
    "DelayFault",
    "TransientGetFault",
    "FaultPlan",
    "RankFaultInjector",
    "CheckpointCorruption",
    "CheckpointStore",
    "CheckpointPlan",
    "CheckpointSession",
    "CheckpointHook",
    "AttemptRecord",
    "RecoveryOutcome",
    "run_with_recovery",
    "store_progress",
    "recovered_loss_table",
]
