"""Fault injection for the simulated MPI substrate.

A :class:`FaultPlan` declares what goes wrong and where, before a job
is launched:

* **rank crash** — terminate one rank with
  :class:`~repro.simmpi.comm.SimulatedRankFailure` when its virtual
  clock reaches ``at_time`` or when it posts its ``at_collective``-th
  collective.  Crashes fire at communication entry points (collectives,
  point-to-point, RMA), which is where a real MPI process discovers and
  reports node death;
* **message delay** — add a fixed number of modeled seconds to a rank's
  communication operations (straggler / congested-link model);
* **transient RMA Get failure** — make the next ``count`` one-sided
  Gets from an origin rank fail; :meth:`repro.simmpi.window.Window.get`
  pays the wasted latency and retries.

``run_spmd(fault_plan=plan)`` hands each rank an injector
(:meth:`FaultPlan.injector`); the hooks in
:mod:`repro.simmpi.comm` and :mod:`repro.simmpi.window` consult it on
every operation.  Crash and transient specs are **one-shot across
restarts**: once fired, a restarted job (same plan object) runs clean,
which is what lets recovery drivers re-run a program under the plan
that just killed it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.simmpi.clock import RankClock, TimeCategory
from repro.simmpi.comm import SimulatedRankFailure

__all__ = [
    "CrashFault",
    "DelayFault",
    "TransientGetFault",
    "FaultPlan",
    "RankFaultInjector",
]


@dataclass
class CrashFault:
    """Kill ``rank`` at virtual time ``at_time`` or collective #``at_collective``."""

    rank: int
    at_time: float | None = None
    at_collective: int | None = None
    fired: bool = False

    def __post_init__(self) -> None:
        if (self.at_time is None) == (self.at_collective is None):
            raise ValueError(
                "exactly one of at_time / at_collective must be given"
            )
        if self.at_time is not None and self.at_time < 0:
            raise ValueError("at_time must be >= 0")
        if self.at_collective is not None and self.at_collective < 1:
            raise ValueError("at_collective counts from 1")

    def due(self, now: float, n_collectives: int) -> bool:
        if self.fired:
            return False
        if self.at_time is not None:
            return now >= self.at_time
        return n_collectives >= self.at_collective

    def describe(self) -> str:
        if self.at_time is not None:
            return f"crash at t >= {self.at_time:.6g}s"
        return f"crash at collective #{self.at_collective}"


@dataclass
class DelayFault:
    """Charge ``seconds`` extra on ``rank``'s communication operations.

    ``count`` bounds how many operations are delayed (``None`` = all).
    """

    rank: int
    seconds: float
    count: int | None = None

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")
        if self.count is not None and self.count < 1:
            raise ValueError("count must be >= 1")

    def take(self) -> float:
        """Seconds to charge for one operation (consumes the budget)."""
        if self.count is None:
            return self.seconds
        if self.count > 0:
            self.count -= 1
            return self.seconds
        return 0.0


@dataclass
class TransientGetFault:
    """Fail the next ``count`` RMA Gets from ``rank`` (to ``target``, or any)."""

    rank: int
    target: int | None = None
    count: int = 1
    remaining: int = field(init=False)

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")
        self.remaining = self.count

    def take(self, target: int) -> bool:
        if self.remaining <= 0:
            return False
        if self.target is not None and target != self.target:
            return False
        self.remaining -= 1
        return True


class FaultPlan:
    """A declarative set of faults to inject into one (or more) SPMD runs.

    Methods return ``self`` so plans chain::

        plan = FaultPlan().crash(1, at_time=0.5).delay(2, 1e-3, count=10)

    The plan object carries the fired/remaining state, so passing the
    same plan to a restarted job will not replay already-fired crashes;
    :meth:`reset` re-arms everything.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.crashes: list[CrashFault] = []
        self.delays: list[DelayFault] = []
        self.transient_gets: list[TransientGetFault] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def crash(
        self,
        rank: int,
        *,
        at_time: float | None = None,
        at_collective: int | None = None,
    ) -> "FaultPlan":
        """Kill ``rank`` at a virtual time or at its n-th collective."""
        self.crashes.append(
            CrashFault(rank=rank, at_time=at_time, at_collective=at_collective)
        )
        return self

    def delay(
        self, rank: int, seconds: float, *, count: int | None = None
    ) -> "FaultPlan":
        """Slow ``rank``'s communication by ``seconds`` per operation."""
        self.delays.append(DelayFault(rank=rank, seconds=seconds, count=count))
        return self

    def transient_get_failure(
        self, rank: int, *, target: int | None = None, count: int = 1
    ) -> "FaultPlan":
        """Fail ``rank``'s next ``count`` window Gets (optionally to ``target``)."""
        self.transient_gets.append(
            TransientGetFault(rank=rank, target=target, count=count)
        )
        return self

    # ------------------------------------------------------------------
    # runtime
    # ------------------------------------------------------------------
    def reset(self) -> "FaultPlan":
        """Re-arm every one-shot fault (fired crashes, spent budgets)."""
        with self._lock:
            for c in self.crashes:
                c.fired = False
            for t in self.transient_gets:
                t.remaining = t.count
        return self

    def injector(self, rank: int) -> "RankFaultInjector":
        """Fresh per-rank injector for one ``run_spmd`` attempt."""
        return RankFaultInjector(self, rank)

    def pending(self) -> int:
        """Number of crash faults that have not fired yet."""
        with self._lock:
            return sum(1 for c in self.crashes if not c.fired)


class RankFaultInjector:
    """One rank's view of a :class:`FaultPlan` during one run.

    The simmpi hooks call :meth:`on_collective`, :meth:`on_p2p` and
    :meth:`on_rma_get`; each checks crash triggers first (raising
    :class:`~repro.simmpi.comm.SimulatedRankFailure`), then applies
    delays / transient failures.  The collective counter is local to
    this injector, so ``at_collective`` counts from the start of each
    attempt; crash ``fired`` flags live on the shared plan.
    """

    def __init__(self, plan: FaultPlan, rank: int) -> None:
        self.plan = plan
        self.rank = rank
        self.n_collectives = 0

    # -- internal ------------------------------------------------------
    def _check_crash(self, clock: RankClock) -> None:
        with self.plan._lock:
            for c in self.plan.crashes:
                if c.rank == self.rank and c.due(clock.now, self.n_collectives):
                    c.fired = True
                    raise SimulatedRankFailure(self.rank, c.describe())

    def _apply_delay(self, clock: RankClock) -> None:
        total = 0.0
        with self.plan._lock:
            for d in self.plan.delays:
                if d.rank == self.rank:
                    total += d.take()
        if total > 0.0:
            clock.charge(TimeCategory.COMMUNICATION, total)

    # -- hook entry points ---------------------------------------------
    def on_collective(self, clock: RankClock) -> None:
        """Called when this rank posts a collective."""
        self.n_collectives += 1
        self._check_crash(clock)
        self._apply_delay(clock)

    def on_p2p(self, clock: RankClock) -> None:
        """Called on send/recv entry."""
        self._check_crash(clock)
        self._apply_delay(clock)

    def on_rma_get(self, clock: RankClock, target: int) -> bool:
        """Called per Get attempt; True = inject a transient failure."""
        self._check_crash(clock)
        with self.plan._lock:
            for t in self.plan.transient_gets:
                if t.rank == self.rank and t.take(target):
                    return True
        return False
