"""Checkpoint store for UoI subproblem state.

UoI's Map-Solve-Reduce structure makes the completed (bootstrap k,
penalty j) subproblem the natural checkpoint unit: selection stores the
solved coefficient vector (support masks *and* the warm-start chain
derive from it), estimation stores the OLS refit plus its held-out
loss.  A job killed mid-run therefore resumes by replaying its
bootstrap indices from the shared ``random_state``, skipping every
checkpointed subproblem, and re-entering the world collectives with
bitwise-identical state.

:class:`CheckpointStore` is the durable half: a directory of ``.npz``
records written with the classic atomic write-rename protocol (write to
a temp file, ``os.replace`` into place) plus a versioned
``MANIFEST.json`` carrying a sha256 checksum per record — a crashed
writer can never leave a torn record behind, and a corrupted one is
detected at load.  Modeled write time is charged to the virtual clocks
through the :mod:`repro.pfs.lustre` cost model (checkpoints live on the
same striped filesystem Tier-1 reads from), so checkpoint cadence shows
up honestly in the paper-style DATA_IO bars —
``benchmarks/bench_ablation_checkpoint.py`` measures exactly that.

:class:`CheckpointSession` is the per-rank half: lookup / record /
flush bookkeeping with a configurable cadence (flush every N completed
subproblems).  Drivers no longer call it directly: checkpointing
attaches to the execution engine as :class:`CheckpointHook`, one
:class:`~repro.engine.hooks.EngineHook` that serves recovered payloads
through ``lookup``, records each solved subproblem as it completes,
and flushes at every stage boundary — before the stage's reduction
collectives, so solved state is durable when the run re-enters them.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import re
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.analysis.dynamic import instrumented_rlock
from repro.pfs import lustre
from repro.simmpi.clock import RankClock, TimeCategory
from repro.simmpi.machine import MachineModel

__all__ = [
    "CheckpointCorruption",
    "CheckpointStore",
    "CheckpointPlan",
    "CheckpointSession",
    "CheckpointHook",
]

MANIFEST_NAME = "MANIFEST.json"
FORMAT_VERSION = 1


class CheckpointCorruption(RuntimeError):
    """A record's bytes do not match its manifest checksum."""


def _safe_filename(key: str) -> str:
    """Filesystem-safe, collision-free file name for a record key."""
    stem = re.sub(r"[^A-Za-z0-9_.-]+", "_", key)[:80]
    digest = hashlib.sha1(key.encode()).hexdigest()[:10]
    return f"{stem}-{digest}.npz"


class CheckpointStore:
    """Directory-backed, atomically-updated store of named array records.

    Parameters
    ----------
    root:
        Directory the store lives in (created if missing).  An existing
        manifest is loaded, which is how a restarted job finds the
        records of the crashed one.

    Every mutation rewrites ``MANIFEST.json`` atomically with a
    monotonically increasing ``version``; every record file is written
    via temp-file + ``os.replace``.  All methods are thread-safe (the
    simulated ranks are threads sharing one store).
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self._records_dir = self.root / "records"
        self._records_dir.mkdir(parents=True, exist_ok=True)
        self._lock = instrumented_rlock("resilience.checkpoint.store")
        manifest_path = self.root / MANIFEST_NAME
        if manifest_path.exists():
            with open(manifest_path, "r", encoding="utf-8") as fh:
                self._manifest = json.load(fh)
            if self._manifest.get("format") != FORMAT_VERSION:
                raise ValueError(
                    f"unsupported checkpoint format "
                    f"{self._manifest.get('format')!r} in {manifest_path}"
                )
        else:
            self._manifest = {
                "format": FORMAT_VERSION,
                "version": 0,
                "meta": {},
                "records": {},
            }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _write_manifest(self) -> None:
        tmp = self.root / (MANIFEST_NAME + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self._manifest, fh, indent=1, sort_keys=True)
        os.replace(tmp, self.root / MANIFEST_NAME)

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Manifest version (increments on every mutation)."""
        with self._lock:
            return int(self._manifest["version"])

    @property
    def meta(self) -> dict:
        with self._lock:
            return dict(self._manifest["meta"])

    def ensure_meta(self, meta: dict) -> None:
        """Pin run metadata; reject a resume under different parameters.

        The first call records ``meta`` (JSON-serializable values); any
        later call — typically from the restarted job — must present an
        identical dict, otherwise the checkpoints describe a *different*
        run and silently mixing them would corrupt results.
        """
        with self._lock:
            current = self._manifest["meta"]
            if not current:
                self._manifest["meta"] = dict(meta)
                self._manifest["version"] += 1
                self._write_manifest()
            elif current != dict(meta):
                raise ValueError(
                    f"checkpoint store {self.root} was written by a "
                    f"different run: stored meta {current!r} != {dict(meta)!r}"
                )

    # ------------------------------------------------------------------
    # records
    # ------------------------------------------------------------------
    def save(self, key: str, arrays: dict[str, np.ndarray]) -> int:
        """Atomically persist one record; returns its payload bytes."""
        if not arrays:
            raise ValueError("record must contain at least one array")
        buf = io.BytesIO()
        np.savez(buf, **{k: np.asarray(v) for k, v in arrays.items()})
        payload = buf.getvalue()
        checksum = hashlib.sha256(payload).hexdigest()
        fname = _safe_filename(key)
        with self._lock:
            tmp = self._records_dir / (fname + ".tmp")
            with open(tmp, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, self._records_dir / fname)
            self._manifest["records"][key] = {
                "file": fname,
                "sha256": checksum,
                "nbytes": len(payload),
                "arrays": sorted(arrays),
            }
            self._manifest["version"] += 1
            self._write_manifest()
        return len(payload)

    def load(self, key: str, *, verify: bool = True) -> dict[str, np.ndarray] | None:
        """Record arrays, or ``None`` if absent.

        With ``verify`` (default) the payload is re-hashed against the
        manifest checksum and :class:`CheckpointCorruption` is raised on
        mismatch — a restart must never trust a torn or bit-rotted
        record.
        """
        with self._lock:
            entry = self._manifest["records"].get(key)
            if entry is None:
                return None
            path = self._records_dir / entry["file"]
            try:
                payload = path.read_bytes()
            except FileNotFoundError as exc:
                raise CheckpointCorruption(
                    f"record {key!r} listed in manifest but {path} is missing"
                ) from exc
            if verify and hashlib.sha256(payload).hexdigest() != entry["sha256"]:
                raise CheckpointCorruption(
                    f"record {key!r} fails its checksum (torn write or bit rot)"
                )
        with np.load(io.BytesIO(payload)) as npz:
            return {name: npz[name] for name in npz.files}

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._manifest["records"]

    def __len__(self) -> int:
        with self._lock:
            return len(self._manifest["records"])

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._manifest["records"])

    def nbytes(self, key: str) -> int:
        with self._lock:
            return int(self._manifest["records"][key]["nbytes"])

    def verify(self) -> list[str]:
        """Keys whose record is missing or fails its checksum."""
        bad = []
        for key in self.keys():
            try:
                self.load(key, verify=True)
            except CheckpointCorruption:
                bad.append(key)
        return bad

    def clear(self) -> None:
        """Drop every record (the manifest survives, version bumped)."""
        with self._lock:
            for entry in self._manifest["records"].values():
                try:
                    os.unlink(self._records_dir / entry["file"])
                except FileNotFoundError:
                    pass
            self._manifest["records"] = {}
            self._manifest["version"] += 1
            self._write_manifest()


@dataclass
class CheckpointPlan:
    """How a UoI driver should checkpoint.

    Attributes
    ----------
    store:
        The shared :class:`CheckpointStore`.
    cadence:
        Flush every N completed subproblems (per writing rank).  ``1``
        persists each subproblem as it completes; larger values batch
        the manifest/filesystem traffic at the price of losing up to
        ``cadence - 1`` subproblems in a crash; ``0`` disables writing
        (resume-only).
    resume:
        Consult existing records before solving (skip checkpointed
        subproblems).
    charge_io:
        Charge the modeled write time of each flush to the writing
        rank's virtual clock (DATA_IO), via the Lustre cost model.
    """

    store: CheckpointStore
    cadence: int = 1
    resume: bool = True
    charge_io: bool = True

    def __post_init__(self) -> None:
        if self.cadence < 0:
            raise ValueError("cadence must be >= 0")


class CheckpointSession:
    """Per-rank checkpoint bookkeeping inside one driver invocation.

    ``plan=None`` makes every method a cheap no-op, so drivers call the
    hooks unconditionally.  ``writer`` is True on the rank that owns a
    subproblem's contribution (cell rank 0 in the distributed drivers);
    non-writers still :meth:`lookup` — they need the recovered state —
    but never touch the store's write path.

    Counters (for recovery reports): ``recovered`` lookups that hit,
    ``completed`` subproblems finished this run, ``saved`` records
    actually flushed.
    """

    def __init__(
        self,
        plan: CheckpointPlan | None,
        *,
        clock: RankClock | None = None,
        machine: MachineModel | None = None,
        writer: bool = True,
    ) -> None:
        self.plan = plan
        self.clock = clock
        self.machine = machine
        self.writer = writer
        self.recovered = 0
        self.completed = 0
        self.saved = 0
        self._buffer: list[tuple[str, dict[str, np.ndarray]]] = []

    @property
    def active(self) -> bool:
        return self.plan is not None

    def ensure_meta(self, meta: dict) -> None:
        if self.active:
            self.plan.store.ensure_meta(meta)

    def lookup(self, key: str) -> dict[str, np.ndarray] | None:
        """Recovered record for ``key``, or None (absent / resume off)."""
        if not self.active or not self.plan.resume:
            return None
        rec = self.plan.store.load(key)
        if rec is not None:
            self.recovered += 1
        return rec

    def record(self, key: str, arrays: dict[str, np.ndarray]) -> None:
        """Note one completed subproblem; flush at the plan's cadence."""
        self.completed += 1
        if not self.active or self.plan.cadence < 1 or not self.writer:
            return
        self._buffer.append((key, arrays))
        if len(self._buffer) >= self.plan.cadence:
            self.flush()

    def flush(self) -> None:
        """Persist buffered records and charge the modeled write time."""
        if not self._buffer:
            return
        total_bytes = 0
        for key, arrays in self._buffer:
            total_bytes += self.plan.store.save(key, arrays)
            self.saved += 1
        self._buffer.clear()
        if self.plan.charge_io and self.clock is not None and self.machine is not None:
            self.clock.charge(
                TimeCategory.DATA_IO,
                lustre.parallel_read_time(
                    self.machine, total_bytes, 1, stripe_count=1
                ),
            )


class CheckpointHook:
    """Checkpoint/restart as an engine hook.

    One :class:`CheckpointHook` attached to
    :func:`repro.engine.executors.run_plan` replaces the lookup /
    record / flush wiring the four legacy drivers each carried:

    * ``on_run_start`` pins the plan's metadata into the store
      (rejecting resumes under different parameters);
    * ``lookup`` serves recovered payloads, which the engine counts as
      completed-without-solving;
    * ``on_subproblem_done`` records each *solved* task at the
      session's cadence (recovered tasks are never re-written);
    * ``on_stage_end`` flushes, so every solved subproblem is durable
      before the stage's reduction collectives run.

    It satisfies the :class:`repro.engine.hooks.EngineHook` protocol
    structurally (no subclassing, keeping this package import-light).
    A hook wrapping ``checkpoint=None`` is a cheap no-op store-wise but
    still counts completed subproblems — that is where the estimators'
    ``completed_subproblems_`` attribute comes from on plain runs.

    Parameters mirror :class:`CheckpointSession`: ``clock`` /
    ``machine`` charge modeled write time, ``writer`` marks the one
    rank per cell that owns the write path.
    """

    def __init__(
        self,
        checkpoint: CheckpointPlan | None,
        *,
        clock: RankClock | None = None,
        machine: MachineModel | None = None,
        writer: bool = True,
    ) -> None:
        self.session = CheckpointSession(
            checkpoint, clock=clock, machine=machine, writer=writer
        )

    # ------------------------------------------------- hook protocol
    def on_run_start(self, plan, executor) -> None:
        self.session.ensure_meta(plan.meta())

    def lookup(self, task) -> dict[str, np.ndarray] | None:
        return self.session.lookup(task.key)

    def on_subproblem_done(self, task, payload, *, recovered: bool) -> None:
        if not recovered:
            self.session.record(task.key, payload)

    def on_stage_end(self, stage, plan) -> None:
        self.session.flush()

    def on_run_end(self, plan) -> None:
        pass

    # ------------------------------------------------------ counters
    @property
    def recovered(self) -> int:
        """Lookups served from the store."""
        return self.session.recovered

    @property
    def completed(self) -> int:
        """Subproblems solved by this run."""
        return self.session.completed
