"""Checkpoint/restart recovery driver for simulated SPMD jobs.

:func:`run_with_recovery` is the resilience loop the paper-scale runs
would use on a real machine: launch the job, and when a rank dies to
an injected fault (:class:`~repro.simmpi.executor.SpmdResult` comes
back with ``failed_ranks``), relaunch the *same* program against the
same :class:`~repro.resilience.checkpoint.CheckpointStore`.  Because
every UoI driver replays its bootstrap indices from the shared
``random_state`` and skips checkpointed subproblems, the restarted
attempt fast-forwards through recovered work and produces bitwise the
same answer an uninterrupted run would have.

Fault plans are one-shot (a fired crash stays fired on the shared
:class:`~repro.resilience.faults.FaultPlan`), so passing the plan that
just killed the job into the restart is safe — and is exactly how the
golden determinism tests exercise the whole loop.

:class:`RecoveryOutcome` aggregates the story across attempts —
virtual time lost to dead attempts, subproblems recovered from
checkpoint versus recomputed — and renders the ``repro faults``
report.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.resilience.checkpoint import CheckpointPlan, CheckpointStore
from repro.resilience.faults import FaultPlan
from repro.simmpi.executor import SpmdResult, describe_failure, run_spmd
from repro.simmpi.machine import LAPTOP, MachineModel

__all__ = [
    "AttemptRecord",
    "RecoveryOutcome",
    "run_with_recovery",
    "store_progress",
    "recovered_loss_table",
]


@dataclass
class AttemptRecord:
    """One launch of the job: who died (if anyone) and at what cost."""

    attempt: int
    elapsed: float
    failed_ranks: dict[int, str]
    #: Records in the checkpoint store when the attempt ended (0 when
    #: the job runs without a checkpoint plan).
    checkpointed: int = 0

    @property
    def completed(self) -> bool:
        return not self.failed_ranks


@dataclass
class RecoveryOutcome:
    """What a :func:`run_with_recovery` loop did, across all attempts.

    Attributes
    ----------
    result:
        The :class:`~repro.simmpi.executor.SpmdResult` of the final,
        successful attempt.
    attempts:
        Per-attempt records, failures first, the clean run last.
    recovered_subproblems / completed_subproblems:
        Summed over ranks of the final attempt, when the rank function
        returns an object exposing these attributes (the distributed
        UoI results do); 0 otherwise.
    lost_time:
        Modeled seconds of the failed attempts (work the machine paid
        for and threw away, less whatever checkpoints preserved).
    """

    result: SpmdResult
    attempts: list[AttemptRecord] = field(default_factory=list)
    recovered_subproblems: int = 0
    completed_subproblems: int = 0

    @property
    def n_restarts(self) -> int:
        return len(self.attempts) - 1

    @property
    def lost_time(self) -> float:
        return sum(a.elapsed for a in self.attempts if not a.completed)

    @property
    def final_elapsed(self) -> float:
        return self.result.elapsed

    @property
    def recovery_fraction(self) -> float:
        """Share of the final attempt's subproblems served from checkpoint."""
        total = self.recovered_subproblems + self.completed_subproblems
        return self.recovered_subproblems / total if total else 0.0

    @property
    def checkpointed_before_restart(self) -> int:
        """Store records left behind by the last failed attempt.

        The denominator for "how much pre-crash work did the restart
        actually reuse"; 0 if no attempt failed.
        """
        for a in reversed(self.attempts):
            if not a.completed:
                return a.checkpointed
        return 0

    def render(self) -> str:
        lines = [
            "recovery report",
            "===============",
            f"attempts:             {len(self.attempts)}"
            f" ({self.n_restarts} restart(s))",
        ]
        for a in self.attempts:
            if a.completed:
                lines.append(
                    f"  attempt {a.attempt}: completed in {a.elapsed:.4g}s modeled"
                )
            else:
                deaths = "; ".join(
                    f"rank {r}: {reason}" for r, reason in sorted(a.failed_ranks.items())
                )
                lines.append(
                    f"  attempt {a.attempt}: FAILED at {a.elapsed:.4g}s modeled ({deaths})"
                )
        lines += [
            f"virtual time lost:    {self.lost_time:.4g}s",
            f"final attempt time:   {self.final_elapsed:.4g}s",
            f"subproblems recovered:{self.recovered_subproblems}"
            f" (computed this attempt: {self.completed_subproblems})",
            f"recovery fraction:    {self.recovery_fraction:.1%}",
        ]
        if self.checkpointed_before_restart:
            reused = (
                self.recovered_subproblems / self.checkpointed_before_restart
            )
            lines.append(
                f"pre-crash records:    {self.checkpointed_before_restart}"
                f" ({reused:.1%} reused on restart)"
            )
        return "\n".join(lines)


def _rank_attr(result: SpmdResult, attr: str) -> int:
    # The distributed results carry world-reduced counts, identical on
    # every rank — take one copy, not a sum over ranks.
    for v in result.values:
        got = getattr(v, attr, None)
        if got is not None:
            return int(got)
    return 0


def run_with_recovery(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    machine: MachineModel = LAPTOP,
    fault_plan: FaultPlan | None = None,
    max_restarts: int = 4,
    **kwargs: Any,
) -> RecoveryOutcome:
    """Run ``fn`` under ``run_spmd``, restarting after injected crashes.

    Each attempt calls ``run_spmd(nranks, fn, *args, **kwargs)``; an
    attempt whose :attr:`SpmdResult.failed_ranks` is non-empty is
    recorded and relaunched (fired faults stay fired, so the restart
    runs clean unless the plan holds more crashes).  ``fn`` is
    responsible for its own checkpointing — pass a ``checkpoint=``
    plan through ``kwargs`` to the UoI drivers to make restarts cheap.

    Raises
    ------
    RuntimeError
        If the job still has failed ranks after ``max_restarts``
        relaunches (e.g. an unbounded crash schedule).
    """
    plan = kwargs.get("checkpoint")
    store = plan.store if isinstance(plan, CheckpointPlan) else None
    attempts: list[AttemptRecord] = []
    for attempt in range(1, max_restarts + 2):
        result = run_spmd(
            nranks, fn, *args,
            machine=machine, fault_plan=fault_plan, **kwargs,
        )
        attempts.append(
            AttemptRecord(
                attempt=attempt,
                elapsed=result.elapsed,
                # describe_failure folds in the engine's exception notes
                # (backend, stage, subproblem keys), so the attempt
                # record says where in the plan each rank died.
                failed_ranks={
                    r: describe_failure(e)
                    for r, e in sorted(result.failed_ranks.items())
                },
                checkpointed=len(store) if store is not None else 0,
            )
        )
        if result.completed:
            return RecoveryOutcome(
                result=result,
                attempts=attempts,
                recovered_subproblems=_rank_attr(result, "recovered_subproblems"),
                completed_subproblems=_rank_attr(result, "completed_subproblems"),
            )
    raise RuntimeError(
        f"job still failing after {max_restarts} restart(s): "
        f"{attempts[-1].failed_ranks}"
    )


def store_progress(store: CheckpointStore) -> dict[str, int]:
    """Records per key prefix (``sel``, ``est``, ...), plus totals.

    The prefix is everything before the first ``/`` in each key, which
    is how the UoI drivers namespace their records.
    """
    out: dict[str, int] = {}
    for key in store.keys():
        prefix = key.split("/", 1)[0]
        out[prefix] = out.get(prefix, 0) + 1
    out["total"] = len(store)
    return out


_EST_KEY = re.compile(r"^(?P<prefix>[\w-]+)/k(?P<k>\d+)/j(?P<j>\d+)$")


def recovered_loss_table(
    store: CheckpointStore,
    n_bootstraps: int,
    n_lambdas: int,
    *,
    prefix: str = "est",
) -> np.ndarray:
    """Reassemble a ``(B2, q)`` held-out loss table from checkpoints.

    Cells with no record stay ``inf`` (the MIN-allreduce neutral
    element), so tables from several stores — or a partial table from a
    live run — combine with
    :func:`repro.core.estimation.merge_loss_tables`.
    """
    # Imported here: repro.core's estimators import the checkpoint layer,
    # so a module-level import would close a package cycle.
    from repro.core.estimation import merge_loss_tables

    table = np.full((n_bootstraps, n_lambdas), np.inf)
    for key in store.keys():
        m = _EST_KEY.match(key)
        if m is None or m.group("prefix") != prefix:
            continue
        k, j = int(m.group("k")), int(m.group("j"))
        if not (0 <= k < n_bootstraps and 0 <= j < n_lambdas):
            continue
        rec = store.load(key)
        if rec is not None and "loss" in rec:
            partial = np.full_like(table, np.inf)
            partial[k, j] = float(rec["loss"])
            table = merge_loss_tables(table, partial)
    return table
