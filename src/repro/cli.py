"""Command-line interface: ``python -m repro ...``.

Subcommands
-----------
``list``
    Show every experiment driver with its paper artifact.
``run <name>|all [--full]``
    Run one experiment driver (or all of them) and print the rendered
    paper-style report.  ``--full`` uses the paper's full
    configurations where the driver distinguishes (slower).
``machine [name]``
    Print a machine-model calibration sheet (default: cori-knl).
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib
import sys
from typing import Sequence

from repro.simmpi.machine import CORI_KNL, LAPTOP

__all__ = ["main", "EXPERIMENTS"]

#: Driver name -> short description (order = run order for ``all``).
EXPERIMENTS = {
    "table1": "Table I — performance-analysis setup",
    "table2": "Table II — randomized vs conventional distribution",
    "fig2": "Fig. 2 — UoI_LASSO single-node breakdown",
    "fig3": "Fig. 3 — UoI_LASSO P_B x P_lambda parallelism",
    "fig4": "Fig. 4 — UoI_LASSO weak scaling",
    "fig5": "Fig. 5 — Allreduce T_min/T_max variability",
    "fig6": "Fig. 6 — UoI_LASSO strong scaling",
    "fig7": "Fig. 7 — UoI_VAR single-node breakdown",
    "fig8": "Fig. 8 — UoI_VAR algorithmic parallelism",
    "fig9": "Fig. 9 — UoI_VAR weak scaling",
    "fig10": "Fig. 10 — UoI_VAR strong scaling",
    "fig11": "Fig. 11 — S&P-50 Granger causal graph",
    "realdata": "§VI — real-data runtime analyses",
    "statcompare": "UoI vs LASSO/CV/MCP/SCAD/Ridge quality",
}

_MACHINES = {"cori-knl": CORI_KNL, "laptop": LAPTOP}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the IPDPS 2020 UoI scaling paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiment drivers")

    run = sub.add_parser("run", help="run experiment driver(s)")
    run.add_argument(
        "name",
        choices=list(EXPERIMENTS) + ["all"],
        help="paper artifact to regenerate, or 'all'",
    )
    run.add_argument(
        "--full",
        action="store_true",
        help="use the paper's full configuration where applicable (slower)",
    )

    mach = sub.add_parser("machine", help="print a machine-model calibration sheet")
    mach.add_argument(
        "name", nargs="?", default="cori-knl", choices=sorted(_MACHINES)
    )
    return parser


def _cmd_list() -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for name, desc in EXPERIMENTS.items():
        print(f"{name:<{width}}  {desc}")
    return 0


def _cmd_run(name: str, full: bool) -> int:
    names = list(EXPERIMENTS) if name == "all" else [name]
    for n in names:
        module = importlib.import_module(f"repro.experiments.{n}")
        result = module.run(fast=not full)
        print(result.render())
        print()
    return 0


def _cmd_machine(name: str) -> int:
    machine = _MACHINES[name]
    print(f"machine model: {machine.name}")
    for field in dataclasses.fields(machine):
        print(f"  {field.name:<20} {getattr(machine, field.name)}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.name, args.full)
    if args.command == "machine":
        return _cmd_machine(args.name)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
