"""Command-line interface: ``python -m repro ...``.

Subcommands
-----------
``list``
    Show every experiment driver with its paper artifact.
``run <name>|all [--full] [--checkpoint-dir D] [--resume]``
    Run one experiment driver (or all of them) and print the rendered
    paper-style report.  ``--full`` uses the paper's full
    configurations where the driver distinguishes (slower).
    ``--checkpoint-dir`` / ``--resume`` are forwarded to drivers that
    support checkpoint/restart (currently ``resilience``): the first
    persists the checkpoint store, the second fast-forwards through
    recovered subproblems instead of recomputing them.
``faults [--nranks N] [--crash-rank R] [--at-frac F] [--cadence C]``
    Fault-injection demo: run the resilience driver, kill one rank at
    a fraction of the clean run's modeled time, restart from
    checkpoint, and report recovered-vs-lost virtual time.
``machine [name]``
    Print a machine-model calibration sheet (default: cori-knl).
``engine [--kind K] [--n N] [--p P] [--machine M] [--backend B]``
    Execution-engine dry run: list the pluggable backends, then
    enumerate the subproblem plan a fit of the given shape would run —
    warm-start chain counts, per-chain subproblem counts
    (run-length encoded as ``<chains>x<subproblems each>``),
    checkpoint-key patterns, and the estimated floating-point cost
    (with modeled seconds on the chosen machine) — without solving
    anything.  ``--backend B`` additionally solves a small fit on that
    backend and verifies the coefficients are bitwise identical to the
    serial reference (``elastic`` accepted).
``workers join|inspect --host H --port P ...``
    Elastic-backend worker processes: ``join`` connects a worker to a
    running :class:`~repro.engine.elastic.WorkerHub` and serves
    warm-start chains until the hub closes (``--delay`` /
    ``--crash-at`` / ``--crash-after`` are the fault-injection knobs
    the tests and the straggler benchmark use); ``inspect`` prints a
    hub's live status (workers, current stage) as JSON.
``serve [--demo N] [--workers W] [--max-batch B] [--no-batch] ...``
    Run the multi-tenant UoI fitting service: a line-JSON socket
    server multiplexing LASSO/VAR jobs over a bounded worker pool,
    with optional replicated results store (``--store DIR``) and
    telemetry manifest export (``--telemetry-dir DIR``).  ``--demo N``
    instead boots an ephemeral server, drives N concurrent mixed jobs
    through socket clients, and verifies every result is bitwise
    identical to a direct fit (the CI acceptance mode).
``check [lint|shapes|determinism|plan|threads|static|dynamic|all] ...``
    Correctness gate: the five static passes (SPMD lint, symbolic
    shape/memory interpretation, determinism taint, plan
    verification, lock-order/shared-state analysis) plus the dynamic
    (collective-matching / RMA-race / deadlock / lock-observation)
    checker battery.  Exits 0 iff there are zero findings;
    ``--format human|json|sarif`` selects the stdout rendering, ``-o``
    additionally writes findings JSON (the CI artifact), and
    ``--sarif-out`` writes SARIF 2.1.0 for GitHub code scanning.
``stream run|replay|diff ...``
    Online Granger networks: ``run`` drives a rolling warm-started
    UoI_VAR fit over a live tick source (synthetic spike rates, the
    finance-panel replay, or a line-JSON socket feed), printing one
    line per fitted window and recording JSONL change events with
    ``--events``; ``replay`` renders a recorded event log as a
    per-window table; ``diff`` compares the Granger networks of any
    two recorded windows offline.
``trace record|summary|chrome|diff|validate ...``
    Telemetry tooling: ``record`` runs small telemetry-enabled fits
    and exports their manifests + Chrome traces; ``summary`` renders a
    manifest as the paper-style four-category breakdown table;
    ``chrome`` converts a manifest to Chrome trace-event JSON for
    chrome://tracing / Perfetto; ``diff`` compares two manifests;
    ``validate`` schema-checks an exported Chrome trace (used in CI).
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib
import inspect
import sys
from typing import Any, Sequence

from repro.simmpi.machine import CORI_KNL, LAPTOP

__all__ = ["main", "EXPERIMENTS"]

#: Driver name -> short description (order = run order for ``all``).
EXPERIMENTS = {
    "table1": "Table I — performance-analysis setup",
    "table2": "Table II — randomized vs conventional distribution",
    "fig2": "Fig. 2 — UoI_LASSO single-node breakdown",
    "fig3": "Fig. 3 — UoI_LASSO P_B x P_lambda parallelism",
    "fig4": "Fig. 4 — UoI_LASSO weak scaling",
    "fig5": "Fig. 5 — Allreduce T_min/T_max variability",
    "fig6": "Fig. 6 — UoI_LASSO strong scaling",
    "fig7": "Fig. 7 — UoI_VAR single-node breakdown",
    "fig8": "Fig. 8 — UoI_VAR algorithmic parallelism",
    "fig9": "Fig. 9 — UoI_VAR weak scaling",
    "fig10": "Fig. 10 — UoI_VAR strong scaling",
    "fig11": "Fig. 11 — S&P-50 Granger causal graph",
    "realdata": "§VI — real-data runtime analyses",
    "statcompare": "UoI vs LASSO/CV/MCP/SCAD/Ridge quality",
    "resilience": "fault injection + checkpoint/restart recovery",
    "engine": "cross-backend bitwise-equivalence demo",
}

_MACHINES = {"cori-knl": CORI_KNL, "laptop": LAPTOP}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the IPDPS 2020 UoI scaling paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiment drivers")

    run = sub.add_parser("run", help="run experiment driver(s)")
    run.add_argument(
        "name",
        choices=list(EXPERIMENTS) + ["all"],
        help="paper artifact to regenerate, or 'all'",
    )
    run.add_argument(
        "--full",
        action="store_true",
        help="use the paper's full configuration where applicable (slower)",
    )
    run.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="persist checkpoints here (drivers that support restart)",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint-dir instead of starting fresh",
    )

    faults = sub.add_parser(
        "faults", help="fault-injection + checkpoint/restart demo"
    )
    faults.add_argument(
        "--nranks", type=int, default=4, help="simulated world size"
    )
    faults.add_argument(
        "--crash-rank", type=int, default=1, help="rank killed by the fault plan"
    )
    faults.add_argument(
        "--at-frac",
        type=float,
        default=0.5,
        help="kill time as a fraction of the clean run's modeled time",
    )
    faults.add_argument(
        "--cadence",
        type=int,
        default=1,
        help="checkpoint every N completed subproblems (0 disables writes)",
    )
    faults.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="persist the checkpoint store (temporary otherwise)",
    )

    mach = sub.add_parser("machine", help="print a machine-model calibration sheet")
    mach.add_argument(
        "name", nargs="?", default="cori-knl", choices=sorted(_MACHINES)
    )

    eng = sub.add_parser(
        "engine", help="list execution backends and dry-run a subproblem plan"
    )
    eng.add_argument(
        "--kind",
        choices=["lasso", "var", "both"],
        default="both",
        help="which plan(s) to enumerate",
    )
    eng.add_argument(
        "--n", type=int, default=128, help="synthetic sample count (rows)"
    )
    eng.add_argument(
        "--p", type=int, default=16, help="synthetic feature / series count"
    )
    eng.add_argument(
        "--machine",
        default="cori-knl",
        choices=sorted(_MACHINES),
        help="machine model used to convert FLOPs to modeled seconds",
    )
    eng.add_argument(
        "--backend",
        default=None,
        metavar="B",
        help="also solve a small fit on this backend and verify bitwise "
        "identity against the serial reference",
    )
    eng.add_argument(
        "--elastic-workers",
        type=int,
        default=2,
        help="fleet size when --backend elastic (default 2)",
    )

    workers = sub.add_parser(
        "workers", help="elastic-backend worker processes"
    )
    wsub = workers.add_subparsers(dest="workers_command", required=True)
    wjoin = wsub.add_parser(
        "join", help="connect a worker to a running hub and serve chains"
    )
    wjoin.add_argument("--host", required=True, help="hub address")
    wjoin.add_argument("--port", type=int, required=True, help="hub port")
    wjoin.add_argument(
        "--name", default=None, help="requested worker name (hub may uniquify)"
    )
    wjoin.add_argument(
        "--delay",
        type=float,
        default=0.0,
        help="straggler injection: sleep this many seconds before each chain",
    )
    wjoin.add_argument(
        "--crash-at",
        type=int,
        default=None,
        metavar="K",
        help="fault injection: die on receiving the K-th run frame",
    )
    wjoin.add_argument(
        "--crash-after",
        type=int,
        default=None,
        metavar="K",
        help="fault injection: die after streaming the K-th chain's "
        "subproblems but before reporting it done",
    )
    winspect = wsub.add_parser("inspect", help="print a hub's status as JSON")
    winspect.add_argument("--host", required=True, help="hub address")
    winspect.add_argument("--port", type=int, required=True, help="hub port")

    serve = sub.add_parser(
        "serve", help="run the multi-tenant UoI fitting service"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="scheduler worker threads"
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=4,
        help="max compatible jobs multiplexed into one shared engine run",
    )
    serve.add_argument(
        "--no-batch",
        action="store_true",
        help="disable cross-job batching (one engine run per job)",
    )
    serve.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="root of the replicated results store (enables durability)",
    )
    serve.add_argument(
        "--telemetry-dir",
        default=None,
        metavar="DIR",
        help="export the service telemetry manifest here on exit",
    )
    serve.add_argument(
        "--demo",
        type=int,
        default=None,
        metavar="N",
        help="acceptance mode: drive N concurrent mixed LASSO/VAR jobs "
        "through socket clients and verify bitwise identity vs direct fits",
    )

    check = sub.add_parser(
        "check",
        help="run the correctness gate (static passes + dynamic checkers)",
    )
    check.add_argument(
        "mode",
        nargs="?",
        choices=[
            "lint",
            "shapes",
            "determinism",
            "plan",
            "threads",
            "static",
            "dynamic",
            "all",
        ],
        default="all",
        help="which checkers to run "
        "(static = lint+shapes+determinism+plan+threads; default: all)",
    )
    check.add_argument(
        "--path",
        action="append",
        default=None,
        metavar="PATH",
        dest="paths",
        help="check these files/directories instead of each pass's default "
        "tree (repeatable)",
    )
    check.add_argument(
        "--nranks", type=int, default=4, help="world size for the dynamic battery"
    )
    check.add_argument(
        "--rank-budget-gib",
        type=float,
        default=None,
        metavar="GIB",
        help="per-rank memory budget for the shapes pass (default 4 GiB)",
    )
    check.add_argument(
        "--format",
        choices=["human", "json", "sarif"],
        default="human",
        help="findings output format on stdout",
    )
    check.add_argument(
        "-o", "--out", default=None, metavar="FILE",
        help="also write findings as JSON to FILE (CI artifact)",
    )
    check.add_argument(
        "--sarif-out",
        default=None,
        metavar="FILE",
        help="also write findings as SARIF 2.1.0 to FILE (GitHub "
        "code-scanning upload)",
    )

    stream = sub.add_parser(
        "stream", help="online Granger networks over live tick streams"
    )
    ssub = stream.add_subparsers(dest="stream_command", required=True)

    srun = ssub.add_parser(
        "run", help="rolling warm-started UoI_VAR fit over a tick source"
    )
    srun.add_argument(
        "--source", choices=["spikes", "finance", "socket"], default="spikes",
        help="tick source: synthetic spike rates, finance-panel "
        "replay, or a line-JSON socket feed",
    )
    srun.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="socket source address (with --source socket)",
    )
    srun.add_argument("--p", type=int, default=8, help="series dimension")
    srun.add_argument("--seed", type=int, default=0, help="source seed")
    srun.add_argument(
        "--ticks", type=int, default=None,
        help="stop the source after this many ticks",
    )
    srun.add_argument("--order", type=int, default=1, help="VAR order d")
    srun.add_argument(
        "--window", type=int, default=80, help="sliding window capacity"
    )
    srun.add_argument(
        "--cadence", type=int, default=5, help="ticks between re-fits"
    )
    srun.add_argument(
        "--max-windows", type=int, default=4, help="stop after K windows"
    )
    srun.add_argument("--q", type=int, default=16, help="lambda grid size")
    srun.add_argument(
        "--b1", type=int, default=8, help="selection bootstraps B1"
    )
    srun.add_argument(
        "--b2", type=int, default=5, help="estimation bootstraps B2"
    )
    srun.add_argument(
        "--backend", default="serial",
        help="engine backend (serial | multiprocess | simmpi | elastic)",
    )
    srun.add_argument(
        "--cold", action="store_true",
        help="disable cross-window warm starts (results are identical; "
        "only the per-window cost changes)",
    )
    srun.add_argument(
        "--verify", action="store_true",
        help="re-fit every window cold on the serial backend and assert "
        "bitwise-identical supports and coefficients",
    )
    srun.add_argument(
        "--events", default=None, metavar="FILE",
        help="append per-window change events to this JSONL file",
    )

    sreplay = ssub.add_parser(
        "replay", help="render a recorded event log as a per-window table"
    )
    sreplay.add_argument("events", help="events JSONL path (from run --events)")

    sdiff = ssub.add_parser(
        "diff", help="diff the networks of two recorded windows"
    )
    sdiff.add_argument("events", help="events JSONL path (from run --events)")
    sdiff.add_argument(
        "--base", type=int, default=None, metavar="W",
        help="base window index (default: first recorded)",
    )
    sdiff.add_argument(
        "--target", type=int, default=None, metavar="W",
        help="target window index (default: last recorded)",
    )

    trace = sub.add_parser("trace", help="telemetry manifests and Chrome traces")
    tsub = trace.add_subparsers(dest="trace_command", required=True)

    trec = tsub.add_parser(
        "record", help="run small telemetry-enabled fits and export traces"
    )
    trec.add_argument(
        "-o", "--out", required=True, metavar="DIR",
        help="export directory for manifests and Chrome traces",
    )
    trec.add_argument(
        "--kind", choices=["lasso", "var", "both"], default="both",
        help="which estimator(s) to run",
    )
    trec.add_argument("--n", type=int, default=96, help="sample count (rows)")
    trec.add_argument(
        "--p", type=int, default=10, help="feature / series count"
    )

    tsum = tsub.add_parser(
        "summary", help="render a run manifest as a breakdown table"
    )
    tsum.add_argument("manifest", nargs="+", help="manifest-*.jsonl path(s)")

    tchrome = tsub.add_parser(
        "chrome", help="convert a manifest to Chrome trace-event JSON"
    )
    tchrome.add_argument("manifest", help="manifest-*.jsonl path")
    tchrome.add_argument(
        "-o", "--out", default=None, metavar="FILE",
        help="output path (default: stdout)",
    )

    tdiff = tsub.add_parser("diff", help="compare two run manifests")
    tdiff.add_argument("manifest_a", help="baseline manifest")
    tdiff.add_argument("manifest_b", help="comparison manifest")

    tval = tsub.add_parser(
        "validate", help="schema-check Chrome trace-event JSON file(s)"
    )
    tval.add_argument("trace", nargs="+", help="trace-*.json path(s)")
    return parser


def _cmd_list() -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for name, desc in EXPERIMENTS.items():
        print(f"{name:<{width}}  {desc}")
    return 0


def _cmd_run(name: str, full: bool, extra: dict[str, Any] | None = None) -> int:
    names = list(EXPERIMENTS) if name == "all" else [name]
    for n in names:
        module = importlib.import_module(f"repro.experiments.{n}")
        kwargs: dict[str, Any] = {"fast": not full}
        if extra:
            # Forward only the options this driver understands, so
            # e.g. --checkpoint-dir reaches `resilience` without every
            # paper driver having to grow the parameter.
            accepted = inspect.signature(module.run).parameters
            kwargs.update({k: v for k, v in extra.items() if k in accepted})
        result = module.run(**kwargs)
        print(result.render())
        print()
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.experiments.resilience import run as run_resilience

    result = run_resilience(
        fast=True,
        checkpoint_dir=args.checkpoint_dir,
        nranks=args.nranks,
        crash_rank=args.crash_rank,
        at_frac=args.at_frac,
        cadence=args.cadence,
    )
    print(result.render())
    return 0 if result.data["bitwise_identical"] else 1


def _rle_chain_lengths(chains: list) -> str:
    """Run-length encode per-chain subproblem counts.

    ``"48x1"`` reads "48 warm-start chains of 1 subproblem each";
    heterogeneous plans yield a comma list in chain order, e.g.
    ``"3x12,1x4"``.
    """
    lengths = [len(chain) for chain in chains]
    runs: list[tuple[int, int]] = []  # (chain count, subproblems per chain)
    for length in lengths:
        if runs and runs[-1][1] == length:
            runs[-1] = (runs[-1][0] + 1, length)
        else:
            runs.append((1, length))
    return ",".join(f"{count}x{length}" for count, length in runs)


def _cmd_engine(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.config import UoILassoConfig, UoIVarConfig
    from repro.engine import BACKENDS, LassoPlan, VarPlan

    machine = _MACHINES[args.machine]

    print("execution backends (fit(executor=...) / REPRO_ENGINE_BACKEND)")
    width = max(len(n) for n in BACKENDS)
    for name in sorted(BACKENDS):
        _, desc = BACKENDS[name]
        print(f"  {name:<{width}}  {desc}")
    print()

    # The dry run only *enumerates* the plan — nothing is solved — so
    # the default UoI configurations are fine at any shape.
    rng = np.random.default_rng(0)
    plans = []
    if args.kind in ("lasso", "both"):
        X = rng.standard_normal((args.n, args.p))
        y = X @ rng.standard_normal(args.p)
        plans.append(LassoPlan(UoILassoConfig(), X, y))
    if args.kind in ("var", "both"):
        plans.append(VarPlan(UoIVarConfig(), rng.standard_normal((args.n, args.p))))

    for plan in plans:
        info = plan.describe()
        flops = plan.estimate_flops()
        total = sum(flops.values())
        print(f"plan {info['kind']}  ({info['subproblems']} subproblems)")
        for stage, s in info["stages"].items():
            chains = plan.chains(stage)
            first_key = chains[0][0].key
            secs = flops[stage] / (machine.gemm_gflops * 1e9)
            print(
                f"  {stage:<10} chains={s['chains']:<3} "
                f"subproblems={s['subproblems']:<4} "
                f"per-chain={_rle_chain_lengths(chains):<8} "
                f"keys={first_key},...  "
                f"~{flops[stage] / 1e9:.3f} GFLOP"
                f" (~{secs:.3g}s modeled on {machine.name})"
            )
        print(
            f"  {'total':<10} ~{total / 1e9:.3f} GFLOP"
            f" (~{total / (machine.gemm_gflops * 1e9):.3g}s modeled)"
        )
        print()

    if args.backend is not None:
        return _engine_backend_check(args.backend, args.elastic_workers)
    return 0


def _engine_backend_check(backend: str, elastic_workers: int) -> int:
    """Solve a small LASSO fit on ``backend`` and compare to serial."""
    import numpy as np

    from repro.core.config import UoILassoConfig
    from repro.core.uoi_lasso import UoILasso
    from repro.datasets import make_sparse_regression
    from repro.engine import BACKEND_ALIASES, make_executor

    name = BACKEND_ALIASES.get(backend, backend)
    ds = make_sparse_regression(
        96, 10, n_informative=3, snr=15.0, rng=np.random.default_rng(7)
    )
    cfg = UoILassoConfig(
        n_lambdas=5,
        n_selection_bootstraps=3,
        n_estimation_bootstraps=2,
        random_state=12,
    )
    reference = UoILasso(cfg).fit(ds.X, ds.y).coef_
    if name == "elastic":
        from repro.engine.elastic import ElasticExecutor

        executor = ElasticExecutor(workers=elastic_workers)
        try:
            candidate = UoILasso(cfg).fit(ds.X, ds.y, executor=executor).coef_
        finally:
            executor.shutdown()
    else:
        candidate = (
            UoILasso(cfg).fit(ds.X, ds.y, executor=make_executor(name)).coef_
        )
    identical = bool(np.array_equal(reference, candidate))
    print(f"backend {name}: bitwise identical to serial = {identical}")
    return 0 if identical else 1


def _cmd_workers(args: argparse.Namespace) -> int:
    from repro.engine.elastic import inspect_hub, worker_main

    if args.workers_command == "join":
        return worker_main(
            args.host,
            args.port,
            args.name,
            delay=args.delay,
            crash_at=args.crash_at,
            crash_after=args.crash_after,
        )
    if args.workers_command == "inspect":
        import json

        print(json.dumps(inspect_hub(args.host, args.port), sort_keys=True))
        return 0
    raise AssertionError(f"unhandled workers command {args.workers_command!r}")


def _summarize_manifest(path: str) -> None:
    """Print one manifest's header, stage table, breakdown and counters."""
    from repro.perf.report import BreakdownRow, format_breakdown_table
    from repro.telemetry import read_manifest

    man = read_manifest(path)
    run, summary = man["run"], man["summary"]
    print(f"manifest {path}")
    print(
        f"  kind={run.get('kind')}  backend={run.get('backend')}  "
        f"label={run.get('label')}  git={str(run.get('git_rev'))[:10]}  "
        f"created={run.get('created_utc')}"
    )
    stages = summary.get("stages", {})
    if stages:
        width = max(len(s) for s in stages)
        for stage, st in stages.items():
            print(
                f"  {stage:<{width}}  subproblems={st['subproblems']:<5} "
                f"solved={st['solved']:<5} recovered={st['recovered']:<5} "
                f"{st['seconds']:.4f}s"
            )
    row = BreakdownRow(
        label=run.get("label") or run.get("kind") or "run",
        seconds=summary.get("breakdown", {}),
        extra={"backend": str(run.get("backend"))},
    )
    print()
    print(format_breakdown_table([row], title="runtime breakdown"))
    counters = man["counters"]
    if counters:
        print()
        width = max(len(k) for k in counters)
        for name in sorted(counters):
            print(f"  {name:<{width}}  {counters[name]:.6g}")


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import Service, ServiceServer, run_demo

    if args.demo is not None:
        summary = run_demo(
            args.demo,
            workers=args.workers,
            batching=not args.no_batch,
            max_batch=args.max_batch,
            store_root=args.store,
            telemetry_dir=args.telemetry_dir,
        )
        print(
            f"demo: {summary['done']}/{summary['jobs']} jobs done, "
            f"bitwise identical to direct fits: {summary['identical']}"
        )
        for row in summary["per_job"]:
            if "error" in row:
                print(f"  {row['kind']:<5} ERROR {row['error']}")
            else:
                print(
                    f"  {row['job_id']:<4} {row['kind']:<5} "
                    f"state={row['state']:<9} events={row['events']:<3} "
                    f"identical={row['identical']}"
                )
        if summary["manifest"]:
            print(f"manifest: {summary['manifest']}")
        ok = summary["done"] == summary["jobs"] and summary["identical"]
        return 0 if ok else 1

    service = Service(
        workers=args.workers,
        batching=not args.no_batch,
        max_batch=args.max_batch,
        store_root=args.store,
    )
    with service, ServiceServer(service, args.host, args.port) as server:
        host, port = server.address
        print(f"repro service listening on {host}:{port}")
        print("protocol: one JSON line per request; ops: submit, status, "
              "jobs, results, cancel, stream, ping")
        try:
            while True:
                import time as _time

                _time.sleep(3600)
        except KeyboardInterrupt:
            print("shutting down")
        finally:
            if args.telemetry_dir is not None:
                path = service.export_manifest(
                    f"{args.telemetry_dir}/service_manifest.jsonl"
                )
                print(f"manifest: {path}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis import (
        MemoryBudget,
        findings_to_json,
        findings_to_sarif,
        format_findings,
        run_check,
    )

    budget = None
    if args.rank_budget_gib is not None:
        budget = MemoryBudget(per_rank_bytes=args.rank_budget_gib * 2**30)
    findings = run_check(
        args.mode, paths=args.paths, nranks=args.nranks, budget=budget
    )
    if args.format == "json":
        print(findings_to_json(findings))
    elif args.format == "sarif":
        print(findings_to_sarif(findings))
    else:
        print(format_findings(findings))
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(findings_to_json(findings))
            fh.write("\n")
        print(f"wrote {args.out} ({len(findings)} finding(s))")
    if args.sarif_out is not None:
        with open(args.sarif_out, "w", encoding="utf-8") as fh:
            fh.write(findings_to_sarif(findings))
            fh.write("\n")
        print(f"wrote {args.sarif_out} ({len(findings)} finding(s), SARIF)")
    return 1 if findings else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "record":
        import numpy as np

        from repro.core.config import UoILassoConfig, UoIVarConfig
        from repro.core.uoi_lasso import UoILasso
        from repro.core.uoi_var import UoIVar
        from repro.datasets import make_sparse_regression, make_sparse_var

        exported: list[str] = []
        if args.kind in ("lasso", "both"):
            ds = make_sparse_regression(
                args.n, args.p, n_informative=3, snr=15.0,
                rng=np.random.default_rng(11),
            )
            cfg = UoILassoConfig(
                n_lambdas=5, n_selection_bootstraps=4,
                n_estimation_bootstraps=3, random_state=5,
            )
            model = UoILasso(cfg).fit(ds.X, ds.y, telemetry=args.out)
            exported += model.telemetry_.exported
        if args.kind in ("var", "both"):
            vds = make_sparse_var(
                min(args.p, 6), args.n, rng=np.random.default_rng(12)
            )
            vcfg = UoIVarConfig()
            vcfg = vcfg.with_(
                lasso=vcfg.lasso.with_(
                    n_lambdas=4, n_selection_bootstraps=3,
                    n_estimation_bootstraps=3, random_state=5,
                )
            )
            vmodel = UoIVar(vcfg).fit(vds.series, telemetry=args.out)
            exported += vmodel.telemetry_.exported
        for path in exported:
            print(path)
        for path in exported:
            if "manifest-" in path:
                print()
                _summarize_manifest(path)
        return 0

    if args.trace_command == "summary":
        for i, path in enumerate(args.manifest):
            if i:
                print()
            _summarize_manifest(path)
        return 0

    if args.trace_command == "chrome":
        import json

        from repro.telemetry import manifest_to_chrome, read_manifest

        doc = manifest_to_chrome(read_manifest(args.manifest))
        if args.out is None:
            print(json.dumps(doc))
        else:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
            print(f"wrote {args.out} ({len(doc['traceEvents'])} events)")
        return 0

    if args.trace_command == "diff":
        from repro.telemetry import diff_manifests, read_manifest

        print(
            diff_manifests(
                read_manifest(args.manifest_a),
                read_manifest(args.manifest_b),
                labels=("a", "b"),
            )
        )
        return 0

    if args.trace_command == "validate":
        import json

        from repro.telemetry import validate_chrome_trace

        bad = 0
        for path in args.trace:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            errors = validate_chrome_trace(doc)
            n = len(doc.get("traceEvents", doc)) if not errors else 0
            if errors:
                bad += 1
                print(f"{path}: INVALID")
                for err in errors:
                    print(f"  {err}")
            else:
                print(f"{path}: ok ({n} events)")
        return 1 if bad else 0

    raise AssertionError(f"unhandled trace command {args.trace_command!r}")


def _stream_source(args: argparse.Namespace):
    """Build the tick source for ``stream run``."""
    from repro.stream import FinanceReplaySource, SocketSource, SpikeRateSource

    if args.source == "spikes":
        return SpikeRateSource(
            args.p, order=args.order, seed=args.seed, max_ticks=args.ticks
        )
    if args.source == "finance":
        n_days = (
            5 * (args.ticks + 1) if args.ticks is not None else 504
        )
        return FinanceReplaySource(args.p, n_days=n_days, seed=args.seed)
    if not args.connect or ":" not in args.connect:
        raise SystemExit("--source socket requires --connect HOST:PORT")
    host, port = args.connect.rsplit(":", 1)
    return SocketSource.connect(host, int(port))


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.stream.diff import read_events

    if args.stream_command == "run":
        import numpy as np

        from repro.core.config import UoILassoConfig, UoIVarConfig
        from repro.engine import make_executor
        from repro.stream import DiffLog, StreamConfig, run_rolling

        config = StreamConfig(
            var=UoIVarConfig(
                order=args.order,
                lasso=UoILassoConfig(
                    n_lambdas=args.q,
                    n_selection_bootstraps=args.b1,
                    n_estimation_bootstraps=args.b2,
                    solver="cd",
                    # Generous sweep budget: warm/cold identity needs
                    # every cd solve to reach tolerance, and sweeps on
                    # ill-conditioned windows can crawl (cd counts full
                    # sweeps, so this is a cap, not a cost).
                    max_iter=20000,
                    random_state=args.seed,
                ),
            ),
            window=args.window,
            cadence=args.cadence,
            max_windows=args.max_windows,
            warm=not args.cold,
            verify=args.verify,
        )

        def on_window(fit) -> None:
            d = fit.diff
            change = (
                "first network"
                if d is None
                else f"+{len(d.gained)}/-{len(d.lost)} edges  "
                f"stability {d.stability:.2f}  drift {d.drift:.3f}"
            )
            mode = "warm" if fit.warm else "cold"
            retry = f"  retries {fit.retries}" if fit.retries else ""
            stuck = (
                f"  NONCONVERGED {fit.nonconverged} (raise max_iter)"
                if fit.nonconverged
                else ""
            )
            print(
                f"window {fit.index:3d}  t={fit.t_end:<6d} {mode}  "
                f"{fit.seconds:6.2f}s  {change}{retry}{stuck}"
            )

        log = DiffLog(args.events) if args.events else None
        executor = make_executor(args.backend)
        try:
            outputs = run_rolling(
                _stream_source(args),
                config,
                executor=executor,
                diff_log=log,
                on_window=on_window,
            )
        finally:
            if log is not None:
                log.close()
            shutdown = getattr(executor, "shutdown", None)
            if shutdown is not None:
                shutdown()
        n_edges = int(np.count_nonzero(outputs.coef))
        print(
            f"fitted {len(outputs)} windows over {outputs.windows[-1].t_end} "
            f"ticks; final network has {n_edges} edges"
            + (f"; events -> {args.events}" if args.events else "")
        )
        if args.verify:
            print(
                "verify: every window bitwise-identical to a cold batch fit"
            )
        return 0

    events = read_events(args.events)
    if not events:
        print(f"no events in {args.events}")
        return 1

    if args.stream_command == "replay":
        print(f"{'window':>6} {'t_end':>7} {'edges':>6} {'+':>4} {'-':>4} "
              f"{'stability':>9} {'drift':>8}")
        for e in events:
            print(
                f"{e['window']:>6} {e.get('t_end', '-'):>7} "
                f"{len(e.get('edges', [])):>6} "
                f"{len(e.get('gained', [])):>4} {len(e.get('lost', [])):>4} "
                f"{e.get('stability', float('nan')):>9.2f} "
                f"{e.get('drift', float('nan')):>8.3f}"
            )
        return 0

    # stream diff: compare any two recorded windows by their edge lists.
    by_window = {e["window"]: e for e in events if "edges" in e}
    if not by_window:
        print("events carry no edge lists; re-record with stream run --events")
        return 1
    base_idx = args.base if args.base is not None else min(by_window)
    target_idx = args.target if args.target is not None else max(by_window)
    for idx in (base_idx, target_idx):
        if idx not in by_window:
            print(f"window {idx} not in event log (has {sorted(by_window)})")
            return 1
    base = {tuple(e) for e in by_window[base_idx]["edges"]}
    target = {tuple(e) for e in by_window[target_idx]["edges"]}
    union = base | target
    stability = 1.0 if not union else len(base & target) / len(union)
    print(
        f"windows {base_idx} -> {target_idx}: {len(base)} -> {len(target)} "
        f"edges, stability {stability:.2f}"
    )
    for label, edges in (
        ("gained", sorted(target - base)),
        ("lost", sorted(base - target)),
    ):
        print(f"  {label} ({len(edges)}):")
        for lag, i, j in edges:
            print(f"    {j} -> {i} @ lag {lag}")
    return 0


def _cmd_machine(name: str) -> int:
    machine = _MACHINES[name]
    print(f"machine model: {machine.name}")
    for field in dataclasses.fields(machine):
        print(f"  {field.name:<20} {getattr(machine, field.name)}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(
            args.name,
            args.full,
            {"checkpoint_dir": args.checkpoint_dir, "resume": args.resume},
        )
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "machine":
        return _cmd_machine(args.name)
    if args.command == "engine":
        return _cmd_engine(args)
    if args.command == "workers":
        return _cmd_workers(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "stream":
        return _cmd_stream(args)
    if args.command == "trace":
        return _cmd_trace(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
