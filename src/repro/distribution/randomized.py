"""Randomized Data Distribution (three-tier, the paper's Fig. 1a).

Tier-0 is the HDF5 file; Tier-1 reads it **once**, in parallel, in
contiguous row blocks (one per rank, via hyperslabs); Tier-2 serves
every subsequent bootstrap subsample with MPI one-sided Gets against
the resident Tier-1 blocks — no further filesystem traffic.  Rows are
block-striped: with N rows and B ranks, each rank owns ≈ N/B
consecutive rows and ends every ``sample`` call holding its ≈ n/B
slice of the requested bootstrap rows.
"""

from __future__ import annotations

import numpy as np

from repro.pfs.hdf5 import Hyperslab, SimH5File
from repro.simmpi.clock import TimeCategory
from repro.simmpi.comm import SimComm
from repro.simmpi.window import Window
from repro.telemetry.recorder import (
    DISTRIBUTION,
    count as _tcount,
    span as _tspan,
)

__all__ = ["RandomizedDistributor", "block_bounds"]


def block_bounds(n: int, size: int, rank: int) -> tuple[int, int]:
    """Row range ``[lo, hi)`` of ``rank`` under balanced block striping.

    The first ``n % size`` ranks get one extra row, matching
    ``numpy.array_split`` semantics.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if not (0 <= rank < size):
        raise ValueError(f"rank {rank} out of range for size {size}")
    base, extra = divmod(n, size)
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


class RandomizedDistributor:
    """Per-rank handle on a three-tier randomized distribution.

    Construction is collective over ``comm`` and performs the Tier-1
    parallel read; each :meth:`sample` call is the Tier-2 shuffle for
    one bootstrap subsample.

    Parameters
    ----------
    comm:
        Communicator whose ranks will jointly hold the data.
    file:
        Source :class:`~repro.pfs.hdf5.SimH5File` (Tier-0).
    dataset:
        Name of the 2-D (samples x features) dataset to distribute.
    """

    def __init__(self, comm: SimComm, file: SimH5File, dataset: str) -> None:
        self.comm = comm
        ds = file.dataset(dataset)
        if ds.data.ndim != 2:
            raise ValueError(f"dataset {dataset!r} must be 2-D, got {ds.shape}")
        self.n_rows, self.n_cols = ds.shape
        if self.n_rows < comm.size:
            raise ValueError(
                f"{self.n_rows} rows cannot be block-striped over "
                f"{comm.size} ranks"
            )
        # Tier-1: one collective contiguous read.
        lo, hi = block_bounds(self.n_rows, comm.size, comm.rank)
        self._lo, self._hi = lo, hi
        self.tier1 = file.read_parallel(
            comm, dataset, Hyperslab.rows(lo, hi - lo, self.n_cols)
        )
        # Tier-2 exposure: every rank's resident block becomes a window.
        self._window = Window(comm, self.tier1, category=TimeCategory.DISTRIBUTION)
        # Every rank can compute any row's owner from the striping rule
        # alone — no lookup table has to be communicated.
        self._bounds = [block_bounds(self.n_rows, comm.size, r) for r in range(comm.size)]

    def owner_of(self, row: int) -> int:
        """Rank holding global ``row`` in its Tier-1 block."""
        if not (0 <= row < self.n_rows):
            raise ValueError(f"row {row} out of range [0, {self.n_rows})")
        for r, (lo, hi) in enumerate(self._bounds):
            if lo <= row < hi:
                return r
        raise AssertionError("unreachable: bounds cover [0, n_rows)")

    def sample(
        self,
        global_rows: np.ndarray,
        *,
        subcomm: SimComm | None = None,
    ) -> np.ndarray:
        """Tier-2 shuffle: materialize this rank's slice of a subsample.

        ``global_rows`` is the full bootstrap index vector (identical
        on every rank, typically generated from a shared seed).  Rank
        ``r`` returns rows ``global_rows[lo_r:hi_r]`` under block
        striping of the subsample, fetched from their Tier-1 owners
        with one batched Get per owner.

        Parameters
        ----------
        global_rows:
            Full subsample index vector.
        subcomm:
            Stripe the subsample over this communicator's ranks
            instead of the full distributor communicator.  Used by the
            P_B x P_lambda grids: a cell's ADMM cores jointly hold one
            bootstrap while the Tier-1 owners (and the one-sided Gets
            against them) remain global.  Purely one-sided, so
            different cells may sample concurrently.
        """
        global_rows = np.asarray(global_rows, dtype=np.intp)
        if global_rows.ndim != 1:
            raise ValueError("global_rows must be 1-D")
        if global_rows.size and (
            global_rows.min() < 0 or global_rows.max() >= self.n_rows
        ):
            raise ValueError("global_rows contains out-of-range indices")
        stripe = subcomm if subcomm is not None else self.comm
        lo, hi = block_bounds(global_rows.size, stripe.size, stripe.rank)
        mine = global_rows[lo:hi]
        out = np.empty((mine.size, self.n_cols), dtype=self.tier1.dtype)

        # Group my needed rows by owner so each owner is hit with one
        # batched one-sided Get (the paper batches via derived windows).
        with _tspan(
            "distribution.sample",
            DISTRIBUTION,
            rank=self.comm.rank,
            rows=int(mine.size),
        ):
            owners = np.empty(mine.size, dtype=np.intp)
            for i, row in enumerate(mine):
                owners[i] = self.owner_of(int(row))
            gets = 0
            for owner in np.unique(owners):
                sel = owners == owner
                local_idx = mine[sel] - self._bounds[owner][0]
                out[sel] = self._window.get(int(owner), local_idx)
                gets += 1
        _tcount("tier2.gets", gets)
        _tcount("tier2.bytes", int(out.nbytes))
        return out

    def barrier(self) -> None:
        """Synchronize the distribution epoch (Tier-2 fence)."""
        self._window.fence()

    def close(self) -> None:
        """Collective teardown of the Tier-2 window."""
        self._window.free()
