"""Communication-avoiding Kronecker construction (paper's Discussion).

The paper identifies the distributed Kronecker product as UoI_VAR's
scaling bottleneck and proposes the remedy: "using communication
avoiding algorithms and using local computation modules to create the
matrix and then have a one-time communication to create the large
matrix."  This module implements that alternative:

* the (small) lag matrices ``X`` and ``Y`` are **broadcast once** to
  every compute core — a single collective on megabytes, instead of
  hundreds of thousands of one-sided Gets against a few reader
  windows;
* each core then assembles its lifted slice *locally*, with zero
  further communication.

The trade-off is memory: every core must hold a full copy of the
source matrices (fine — they are MBs; it is only the *lifted* problem
that explodes).  :func:`ca_kron_model_time` gives the analytic cost at
paper scale so the ablation can compare against the calibrated
RMA-based law, and :class:`BroadcastKron` is the functional
implementation (bit-identical output to
:class:`~repro.distribution.kron_dist.DistributedKron`).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse

from repro.distribution.kron_dist import lifted_row_block
from repro.simmpi import timing
from repro.simmpi.clock import TimeCategory
from repro.simmpi.comm import SimComm
from repro.simmpi.machine import MachineModel

__all__ = ["BroadcastKron", "ca_kron_model_time"]


class BroadcastKron:
    """Broadcast-then-assemble lifted-problem construction.

    Parameters
    ----------
    comm:
        Communicator; construction is collective.
    X:
        ``(m, k)`` lag-regressor matrix, required on ``root`` only.
    Y:
        ``(m, p)`` response matrix, required on ``root`` only.
    root:
        Rank holding the source data (the single reader).
    """

    def __init__(
        self,
        comm: SimComm,
        X: np.ndarray | None,
        Y: np.ndarray | None,
        *,
        root: int = 0,
    ) -> None:
        if comm.rank == root:
            if X is None or Y is None:
                raise ValueError("root rank must provide X and Y")
            X = np.ascontiguousarray(X, dtype=float)
            Y = np.ascontiguousarray(Y, dtype=float)
            if X.ndim != 2 or Y.ndim != 2 or X.shape[0] != Y.shape[0]:
                raise ValueError("X and Y must be 2-D with matching rows")
            payload = (X, Y)
        else:
            payload = None
        # The one-time communication: everything else is local.
        self.X, self.Y = comm.bcast(
            payload, root=root, category=TimeCategory.DISTRIBUTION
        )
        self.comm = comm
        self.m, self.k = self.X.shape
        self.p = self.Y.shape[1]

    def build_local(self) -> tuple[scipy.sparse.csr_matrix, np.ndarray, tuple[int, int]]:
        """Assemble this rank's lifted slice with no further communication.

        Returns the same ``(A_local, b_local, bounds)`` contract as
        :meth:`DistributedKron.build_local`.
        """
        comm = self.comm
        m, k, p = self.m, self.k, self.p
        lo, hi = lifted_row_block(m, p, comm.size, comm.rank)
        n_local = hi - lo
        rows = np.arange(lo, hi)
        i = rows % m
        j = rows // m
        data = self.X[i]  # (n_local, k) source rows, purely local
        b_local = self.Y[i, j]
        indptr = np.arange(0, (n_local + 1) * k, k, dtype=np.intp)
        indices = (j[:, None] * k + np.arange(k, dtype=np.intp)[None, :]).reshape(-1)
        A_local = scipy.sparse.csr_matrix(
            (data.reshape(-1), indices, indptr), shape=(n_local, k * p)
        )
        return A_local, b_local, (lo, hi)


def ca_kron_model_time(
    machine: MachineModel,
    n_samples: int,
    n_features: int,
    cores: int,
    *,
    order: int = 1,
) -> float:
    """Modeled construction time of the broadcast strategy at scale.

    One broadcast of the raw ``(m x dp) + (m x p)`` source matrices
    over ``cores`` ranks, plus the local assembly of the per-core
    lifted slice at memory bandwidth.  Compare against
    :func:`repro.perf.scaling.kron_distribution_time` (the calibrated
    RMA law) — the broadcast strategy's cost is independent of the
    lifted size's p^3 explosion, which is exactly why the paper
    proposes it.
    """
    if n_samples < 1 or n_features < 1 or cores < 1:
        raise ValueError("n_samples, n_features and cores must be >= 1")
    if order < 1:
        raise ValueError("order must be >= 1")
    m = n_samples - order
    src_bytes = 8 * m * (order * n_features + n_features)
    bcast = timing.bcast_time(machine, src_bytes, cores)
    lifted_rows = m * n_features
    rows_local = max(1, lifted_rows // cores)
    local_bytes = 8.0 * rows_local * (order * n_features + 1)
    assemble = local_bytes / (machine.mem_bw_gbs * 1e9)
    return bcast + assemble
