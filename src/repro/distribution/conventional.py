"""Conventional data distribution (the paper's Table-II baseline).

One designated root core reads the requested rows through *serial*
HDF5 — a chunk at a time, re-opening the file for every chunk, and
never holding the full dataset resident (a KNL node has 96 GB; the
datasets reach terabytes) — then scatters row blocks to the compute
cores.  Every bootstrap subsample pays the full read again, which is
exactly why Table II's conventional read column explodes while the
randomized strategy's stays flat.
"""

from __future__ import annotations

import numpy as np

from repro.pfs.hdf5 import Hyperslab, SimH5File
from repro.simmpi.clock import TimeCategory
from repro.simmpi.comm import SimComm
from repro.distribution.randomized import block_bounds

__all__ = ["ConventionalDistributor"]


class ConventionalDistributor:
    """Per-rank handle on the root-reader scatter distribution.

    Parameters
    ----------
    comm:
        Communicator of the compute cores (rank 0 is the reader).
    file:
        Source :class:`~repro.pfs.hdf5.SimH5File`.
    dataset:
        Name of the 2-D (samples x features) dataset.
    rows_per_chunk:
        How many rows the root reads per serial request.  Small chunks
        are faithful to the paper's "can read only a small chunk of
        data at a time"; each chunk pays an open + seek.
    """

    def __init__(
        self,
        comm: SimComm,
        file: SimH5File,
        dataset: str,
        *,
        rows_per_chunk: int = 1024,
    ) -> None:
        if rows_per_chunk < 1:
            raise ValueError("rows_per_chunk must be >= 1")
        self.comm = comm
        self.file = file
        self.dataset = dataset
        self.rows_per_chunk = rows_per_chunk
        ds = file.dataset(dataset)
        if ds.data.ndim != 2:
            raise ValueError(f"dataset {dataset!r} must be 2-D, got {ds.shape}")
        self.n_rows, self.n_cols = ds.shape

    def sample(self, global_rows: np.ndarray) -> np.ndarray:
        """Deliver this rank's slice of one bootstrap subsample.

        The root serially reads *all* requested rows chunk-by-chunk
        (sorted, to at least keep the access pattern sequential), then
        scatters block-striped slices.  Returns the local block; the
        call is collective.
        """
        global_rows = np.asarray(global_rows, dtype=np.intp)
        if global_rows.ndim != 1:
            raise ValueError("global_rows must be 1-D")
        comm = self.comm
        if comm.rank == 0:
            if global_rows.size and (
                global_rows.min() < 0 or global_rows.max() >= self.n_rows
            ):
                raise ValueError("global_rows contains out-of-range indices")
            rows = np.empty((global_rows.size, self.n_cols))
            # Read in sorted chunks; undo the sort afterwards so the
            # delivered sample preserves the bootstrap order.
            order = np.argsort(global_rows, kind="stable")
            sorted_rows = global_rows[order]
            filled = 0
            while filled < sorted_rows.size:
                batch = sorted_rows[filled : filled + self.rows_per_chunk]
                lo, hi = int(batch.min()), int(batch.max()) + 1
                block = self.file.read_serial(
                    self.dataset,
                    Hyperslab.rows(lo, hi - lo, self.n_cols),
                    clock=comm.clock,
                    machine=comm.machine,
                )
                rows[order[filled : filled + batch.size]] = block[batch - lo]
                filled += batch.size
            pieces = [
                rows[slice(*block_bounds(global_rows.size, comm.size, r))]
                for r in range(comm.size)
            ]
        else:
            pieces = None
        return comm.scatter(pieces, root=0, category=TimeCategory.DISTRIBUTION)
