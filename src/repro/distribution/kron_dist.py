"""Distributed Kronecker product + vectorization (paper §III-B.2).

UoI_VAR's lifted problem ``(I_p ⊗ X, vec Y)`` is ≈ p³ in the input
size: the data file is megabytes, the lifted design is gigabytes to
terabytes.  It therefore can neither be materialized on one node nor
read from disk.  The paper's strategy, reproduced here:

* a small number of ``n_reader`` processes hold the (small) lag
  matrices ``X`` (m x k) and ``Y`` (m x p) in RMA windows;
* every compute core determines which *lifted* rows it owns under
  block striping of the ``m * p`` lifted rows, maps each lifted row
  ``r`` back to its source coordinates ``(i, j) = (r mod m, r div m)``
  — lifted row ``r`` is ``e_j' ⊗ X[i, :]`` with response ``Y[i, j]`` —
  and one-sided-``Get``\\ s exactly the source rows it needs;
* the local slice is assembled directly in sparse (CSR) form: the
  lifted design has sparsity ``1 - 1/p`` and the paper's solver is
  Eigen-Sparse.

The many-origins-few-targets traffic pattern is the UoI_VAR
"Distribution" cost the paper's Figs. 7-10 track; the window's
contention model charges it accordingly.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse

from repro.distribution.randomized import block_bounds
from repro.simmpi.clock import TimeCategory
from repro.simmpi.comm import SimComm
from repro.simmpi.window import Window

__all__ = ["DistributedKron", "lifted_row_block", "lifted_coords"]


def lifted_row_block(m: int, p: int, size: int, rank: int) -> tuple[int, int]:
    """Range ``[lo, hi)`` of lifted rows owned by ``rank``.

    The lifted problem has ``m * p`` rows (``m`` time rows per output
    column, ``p`` output columns, column-major per ``vec``).
    """
    return block_bounds(m * p, size, rank)


def lifted_coords(r: int, m: int) -> tuple[int, int]:
    """Source coordinates ``(i, j)`` of lifted row ``r``: ``vec`` stacking
    puts ``Y[i, j]`` at position ``i + m * j``."""
    if m < 1:
        raise ValueError("m must be >= 1")
    if r < 0:
        raise ValueError("r must be >= 0")
    return r % m, r // m


class DistributedKron:
    """Per-rank handle on the distributed Kronecker construction.

    Construction is collective.  Reader ranks (``rank < n_readers``)
    must pass the full lag matrices ``X`` and ``Y``; other ranks may
    pass ``None`` (they learn the shapes over the wire, fetching rows
    one-sidedly) — matching the paper, where only the reader processes
    ever see the source data.

    Parameters
    ----------
    comm:
        Communicator (readers and compute cores together).
    X:
        ``(m, k)`` lag-regressor matrix (eq. 8), or ``None`` on
        non-reader ranks.
    Y:
        ``(m, p)`` response matrix (eq. 7), or ``None`` on non-reader
        ranks.
    n_readers:
        How many leading ranks expose the data ("usually equal to the
        number of samples based on the availability of resources").
    """

    def __init__(
        self,
        comm: SimComm,
        X: np.ndarray | None,
        Y: np.ndarray | None,
        *,
        n_readers: int = 1,
    ) -> None:
        if not (1 <= n_readers <= comm.size):
            raise ValueError(
                f"n_readers must be in [1, {comm.size}], got {n_readers}"
            )
        self.comm = comm
        self.n_readers = n_readers
        self.is_reader = comm.rank < n_readers

        if self.is_reader:
            if X is None or Y is None:
                raise ValueError("reader ranks must provide X and Y")
            X = np.ascontiguousarray(X, dtype=float)
            Y = np.ascontiguousarray(Y, dtype=float)
            if X.ndim != 2 or Y.ndim != 2 or X.shape[0] != Y.shape[0]:
                raise ValueError(
                    f"X {None if X is None else X.shape} / "
                    f"Y {None if Y is None else Y.shape} must share rows"
                )
            shape_info = (X.shape, Y.shape)
        else:
            shape_info = None
        self.X_shape, self.Y_shape = comm.bcast(
            shape_info, root=0, category=TimeCategory.DISTRIBUTION
        )
        self.m, self.k = self.X_shape
        self.p = self.Y_shape[1]
        if self.m < n_readers:
            raise ValueError(
                f"{self.m} source rows cannot be striped over {n_readers} readers"
            )

        # Readers expose their row blocks of X and Y; everyone else
        # exposes nothing (pure origins).
        self._reader_bounds = [
            block_bounds(self.m, n_readers, r) for r in range(n_readers)
        ]
        if self.is_reader:
            lo, hi = self._reader_bounds[comm.rank]
            self._x_win = Window(comm, X[lo:hi], category=TimeCategory.DISTRIBUTION)
            self._y_win = Window(comm, Y[lo:hi], category=TimeCategory.DISTRIBUTION)
        else:
            self._x_win = Window(comm, None, category=TimeCategory.DISTRIBUTION)
            self._y_win = Window(comm, None, category=TimeCategory.DISTRIBUTION)

    def _owner_of_source_row(self, i: int) -> int:
        for r, (lo, hi) in enumerate(self._reader_bounds):
            if lo <= i < hi:
                return r
        raise AssertionError("unreachable: reader bounds cover [0, m)")

    def build_local(self) -> tuple[scipy.sparse.csr_matrix, np.ndarray, tuple[int, int]]:
        """Assemble this rank's slice of ``(I ⊗ X, vec Y)``.

        Returns
        -------
        A_local:
            ``(n_local, k * p)`` CSR slice of the lifted design.
        b_local:
            ``(n_local,)`` slice of ``vec Y``.
        bounds:
            The ``[lo, hi)`` lifted-row range this rank owns.
        """
        comm = self.comm
        m, k, p = self.m, self.k, self.p
        lo, hi = lifted_row_block(m, p, comm.size, comm.rank)
        n_local = hi - lo
        b_local = np.empty(n_local)
        data = np.empty((n_local, k))
        col_block = np.empty(n_local, dtype=np.intp)

        # Walk the owned lifted rows grouped by (output column j,
        # reader owner) so each group is one batched Get per window.
        r = lo
        while r < hi:
            i, j = lifted_coords(r, m)
            owner = self._owner_of_source_row(i)
            o_lo, o_hi = self._reader_bounds[owner]
            # Longest run staying in column j and owner's block.
            run = min(hi - r, (j + 1) * m - r, o_hi - i)
            x_rows = self._x_win.get(owner, slice(i - o_lo, i - o_lo + run))
            y_vals = self._y_win.get(owner, (slice(i - o_lo, i - o_lo + run), j))
            sel = slice(r - lo, r - lo + run)
            data[sel] = x_rows
            b_local[sel] = y_vals
            col_block[sel] = j
            r += run

        # CSR assembly: lifted row (i, j) has its k nonzeros in columns
        # [j*k, (j+1)*k).
        indptr = np.arange(0, (n_local + 1) * k, k, dtype=np.intp)
        indices = (
            col_block[:, None] * k + np.arange(k, dtype=np.intp)[None, :]
        ).reshape(-1)
        A_local = scipy.sparse.csr_matrix(
            (data.reshape(-1), indices, indptr), shape=(n_local, k * p)
        )
        self._x_win.fence()
        return A_local, b_local, (lo, hi)

    def close(self) -> None:
        """Collective teardown of both windows."""
        self._x_win.free()
        self._y_win.free()
