"""Data distribution strategies (the paper's Section III contributions).

UoI needs *many random bootstrap subsamples* of the data delivered to
compute cores.  How the data gets from the file to the cores is the
paper's main systems contribution; this package implements all three
strategies it discusses:

* :mod:`repro.distribution.conventional` — the baseline: one core
  reads the file through serial HDF5, a chunk at a time, re-opening
  the file, then scatters rows.  This is the slow column of Table II.
* :mod:`repro.distribution.randomized` — the paper's Randomized Data
  Distribution: Tier-0 the file, Tier-1 a one-time parallel contiguous
  hyperslab read into core memory, Tier-2 MPI one-sided random Gets
  that assemble every bootstrap subsample from the resident Tier-1
  blocks.  This is the fast column of Table II and the "Distribution"
  bar of the UoI_LASSO figures.
* :mod:`repro.distribution.kron_dist` — the distributed Kronecker
  product + vectorization for UoI_VAR: ``n_reader`` processes hold the
  (small) lag matrices X and Y, expose them in RMA windows, and every
  compute core Gets exactly the rows it needs to assemble its slice of
  the (huge, never-centrally-materialized) lifted problem
  ``(I ⊗ X, vec Y)``.
* :mod:`repro.distribution.kron_ca` — the *communication-avoiding*
  alternative the paper's Discussion proposes: broadcast the small
  source matrices once, assemble every lifted slice locally.
"""

from repro.distribution.conventional import ConventionalDistributor
from repro.distribution.randomized import RandomizedDistributor
from repro.distribution.kron_dist import DistributedKron, lifted_row_block
from repro.distribution.kron_ca import BroadcastKron, ca_kron_model_time

__all__ = [
    "ConventionalDistributor",
    "RandomizedDistributor",
    "DistributedKron",
    "lifted_row_block",
    "BroadcastKron",
    "ca_kron_model_time",
]
