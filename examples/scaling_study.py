#!/usr/bin/env python
"""Reproduce the paper's scaling study from your terminal.

Prints the modeled weak/strong-scaling breakdowns for both algorithms
at the paper's configurations (Tables I–II, Figures 4–6 and 9–10) and
runs a small *functional* distributed job on the simulated MPI
substrate so you can see the same machinery executing for real.

Run:  python examples/scaling_study.py [--ranks N]
"""

import argparse

from repro.experiments import fig4, fig6, fig9, fig10, table1, table2
from repro.experiments._functional import mini_uoi_lasso_run


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=4,
                        help="functional-simulation world size")
    args = parser.parse_args()

    for driver in (table1, table2, fig4, fig6, fig9, fig10):
        print(driver.run(fast=True).render())
        print()

    print("=" * 64)
    print(f"functional distributed UoI_LASSO on {args.ranks} simulated ranks")
    print("=" * 64)
    out = mini_uoi_lasso_run(nranks=args.ranks)
    print(f"modeled job time: {out['elapsed']:.3e}s on the KNL model")
    total = sum(out["breakdown"].values())
    for cat, sec in out["breakdown"].items():
        print(f"  {cat:<14} {sec:.3e}s ({sec / total:5.1%})")


if __name__ == "__main__":
    main()
