#!/usr/bin/env python
"""Functional-connectivity inference from spike counts (paper §VI).

The paper's neuroscience application fits UoI_VAR to 192-electrode
M1/S1 spike recordings.  This example runs the identical pipeline on
the synthetic spike-count panel (latent sparse VAR -> Poisson counts):
center the counts, fit UoI_VAR(1), extract the directed electrode
network, and — because the generator plants the ground truth — score
the recovered connectivity and summarize M1 <-> S1 interactions.

Run:  python examples/neuro_connectivity.py [--electrodes N]
"""

import argparse

import numpy as np

from repro.core import UoILasso, UoILassoConfig, UoIVar, UoIVarConfig
from repro.datasets.neuro import make_spike_counts
from repro.metrics.selection import selection_report
from repro.var.granger import granger_adjacency


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--electrodes", type=int, default=20)
    parser.add_argument("--samples", type=int, default=900)
    args = parser.parse_args()

    rng = np.random.default_rng(7)
    panel = make_spike_counts(args.electrodes, args.samples, density=0.06, rng=rng)
    print(f"panel: {panel.counts.shape[0]} samples x "
          f"{panel.counts.shape[1]} electrodes "
          f"({panel.regions.count('M1')} M1, {panel.regions.count('S1')} S1)")
    print(f"mean firing rate: {panel.counts.mean():.2f} spikes/bin")

    # Center the counts (the latent model is linear in fluctuations).
    centered = panel.counts - panel.counts.mean(axis=0)
    cfg = UoIVarConfig(
        order=1,
        lasso=UoILassoConfig(
            n_lambdas=10,
            n_selection_bootstraps=10,
            n_estimation_bootstraps=5,
            solver="cd",
            random_state=7,
        ),
    )
    model = UoIVar(cfg).fit(centered)
    summary = model.network_summary()
    print(f"\ninferred network: {summary['edges']} edges "
          f"/ {summary['possible_edges']} possible "
          f"(density {summary['density']:.3f})")

    p = args.electrodes
    true_off = panel.coefs[0] != 0
    np.fill_diagonal(true_off, False)
    est_off = (model.coefs_[0] != 0) & ~np.eye(p, dtype=bool)
    rep = selection_report(true_off, est_off)
    print(f"vs planted coupling: precision {rep.precision:.2f}, "
          f"recall {rep.recall:.2f} (tp={rep.tp}, fp={rep.fp}, fn={rep.fn})")

    # Region-level summary (the kind of statement the paper's
    # application sections motivate).
    W = granger_adjacency(model.coefs_)
    np.fill_diagonal(W, 0.0)
    regions = np.array(panel.regions)
    blocks = {}
    for src in ("M1", "S1"):
        for dst in ("M1", "S1"):
            mask = np.outer(regions == dst, regions == src)
            blocks[f"{src}->{dst}"] = int((W[mask] > 0).sum())
    print("\nregion-to-region edge counts:")
    for k, v in blocks.items():
        print(f"  {k}: {v}")


if __name__ == "__main__":
    main()
