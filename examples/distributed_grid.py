#!/usr/bin/env python
"""Drive the P_B x P_lambda process grids on the simulated cluster.

The paper's Fig. 3 exploits UoI's algorithmic parallelism: the world
communicator splits into bootstrap groups x penalty groups, with a
consensus-ADMM cell inside each.  This example runs the *same fit*
under several grid shapes on the functional simulator and shows that
(a) every shape returns the same coefficients and (b) the modeled
time breakdown shifts between categories as the grid changes.

Run:  python examples/distributed_grid.py
"""

import numpy as np

from repro.core import UoILassoConfig
from repro.core.parallel import distributed_uoi_lasso
from repro.datasets import make_sparse_regression
from repro.pfs import SimH5File
from repro.simmpi import run_spmd, CORI_KNL


def main() -> None:
    ds = make_sparse_regression(120, 12, n_informative=3,
                                rng=np.random.default_rng(5))
    file = SimH5File("/grid.h5")
    file.create_dataset("data", np.column_stack([ds.y, ds.X]))
    cfg = UoILassoConfig(
        n_lambdas=8, n_selection_bootstraps=8, n_estimation_bootstraps=4,
        random_state=5,
    )

    world = 8
    reference = None
    print(f"world size: {world} simulated ranks; "
          f"B1={cfg.n_selection_bootstraps}, q={cfg.n_lambdas}")
    print(f"{'grid':>8}{'admm cores':>12}{'elapsed (model)':>17}  breakdown")
    for pb, plam in [(1, 1), (2, 1), (1, 2), (2, 2), (4, 2), (2, 4)]:
        res = run_spmd(
            world,
            lambda comm: distributed_uoi_lasso(
                comm, file, "data", cfg, pb=pb, plam=plam
            ),
            machine=CORI_KNL,
        )
        coef = res.values[0].coef
        if reference is None:
            reference = coef
        gap = float(np.max(np.abs(coef - reference)))
        bd = res.breakdown()
        total = sum(bd.values()) or 1.0
        shares = ", ".join(f"{k[:4]} {v / total:4.0%}" for k, v in bd.items())
        print(f"{pb}x{plam:>2}".rjust(8)
              + f"{world // (pb * plam):>12}"
              + f"{res.elapsed:>17.3e}"
              + f"  {shares}   (coef gap vs 1x1: {gap:.1e})")

    print("\ntrue support:", np.flatnonzero(ds.support).tolist(),
          "| recovered:", np.flatnonzero(reference).tolist())


if __name__ == "__main__":
    main()
