#!/usr/bin/env python
"""Quickstart: sparse regression and Granger-network inference with UoI.

Runs in under a minute on a laptop.  Three stops:

1. UoI_LASSO on a planted sparse regression — watch it recover the
   support with far fewer false positives than a plain LASSO.
2. UoI_VAR on a small simulated network — recover the directed edges.
3. The same UoI_LASSO fit executed *distributed* on the simulated MPI
   substrate (4 ranks, consensus ADMM, randomized data distribution),
   matching the serial answer.
"""

import numpy as np

from repro.core import UoILasso, UoIVar, UoILassoConfig
from repro.core.parallel import distributed_uoi_lasso
from repro.datasets import make_sparse_regression, make_sparse_var
from repro.linalg import lasso_cd, lambda_grid
from repro.metrics import selection_report
from repro.pfs import SimH5File
from repro.simmpi import run_spmd, CORI_KNL


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    print("=" * 64)
    print("1. UoI_LASSO vs plain LASSO on a planted sparse model")
    print("=" * 64)
    ds = make_sparse_regression(200, 40, n_informative=5, snr=8.0, rng=rng)
    cfg = UoILassoConfig(
        n_lambdas=12,
        n_selection_bootstraps=12,
        n_estimation_bootstraps=8,
        solver="cd",
        random_state=0,
    )
    uoi = UoILasso(cfg).fit(ds.X, ds.y)
    uoi_rep = selection_report(ds.support, uoi.coef_)

    # Plain LASSO at its best held-out penalty, for contrast.
    lams = lambda_grid(ds.X, ds.y, num=12)
    best, best_loss = None, np.inf
    for lam in lams:
        beta = lasso_cd(ds.X[:150], ds.y[:150], float(lam))
        loss = float(np.mean((ds.y[150:] - ds.X[150:] @ beta) ** 2))
        if loss < best_loss:
            best, best_loss = beta, loss
    lasso_rep = selection_report(ds.support, best)

    print(f"true support: {np.flatnonzero(ds.support).tolist()}")
    print(f"UoI_LASSO   : {np.flatnonzero(uoi.coef_).tolist()}"
          f"   (FP={uoi_rep.fp}, FN={uoi_rep.fn})")
    print(f"plain LASSO : {np.flatnonzero(best).tolist()}"
          f"   (FP={lasso_rep.fp}, FN={lasso_rep.fn})")
    print(f"UoI R^2 on all data: {uoi.score(ds.X, ds.y):.4f}")

    # ------------------------------------------------------------------
    print()
    print("=" * 64)
    print("2. UoI_VAR: recover a directed Granger network")
    print("=" * 64)
    sv = make_sparse_var(6, 600, density=0.12, rng=rng)
    var = UoIVar(
        order=1,
        n_lambdas=10,
        n_selection_bootstraps=8,
        n_estimation_bootstraps=5,
        solver="cd",
        random_state=0,
    ).fit(sv.series)
    print("true edges (off-diagonal):")
    print((sv.support[0] & ~np.eye(6, dtype=bool)).astype(int))
    print("estimated edges:")
    est = var.coefs_[0] != 0
    print((est & ~np.eye(6, dtype=bool)).astype(int))
    print("network summary:", var.network_summary())

    # ------------------------------------------------------------------
    print()
    print("=" * 64)
    print("3. The same UoI_LASSO, distributed over 4 simulated MPI ranks")
    print("=" * 64)
    small = make_sparse_regression(96, 10, n_informative=3, rng=np.random.default_rng(1))
    file = SimH5File("/quickstart.h5")
    file.create_dataset("data", np.column_stack([small.y, small.X]))
    dcfg = UoILassoConfig(
        n_lambdas=6, n_selection_bootstraps=4, n_estimation_bootstraps=3,
        random_state=1,
    )
    serial = UoILasso(dcfg).fit(small.X, small.y)
    result = run_spmd(
        4,
        lambda comm: distributed_uoi_lasso(comm, file, "data", dcfg),
        machine=CORI_KNL,
    )
    dist_coef = result.values[0].coef
    print(f"max |distributed - serial| coefficient gap: "
          f"{np.max(np.abs(dist_coef - serial.coef_)):.2e}")
    print(f"modeled time on the KNL machine model: {result.elapsed:.4f}s")
    print("breakdown:", {k: f"{v:.2e}" for k, v in result.breakdown().items()})


if __name__ == "__main__":
    main()
