#!/usr/bin/env python
"""Granger-causal analysis of a 50-company stock panel (paper Fig. 11).

Reproduces the paper's financial case study end to end on the
synthetic S&P-like panel: daily closes -> weekly closes -> first
differences -> UoI_VAR(1) with strong sparsity pressure (B1 >> B2) ->
directed graph with node degrees and edge weights — plus a check
against the panel's *planted* lead-lag network, which the real data
cannot offer.

Run:  python examples/finance_granger.py [--full]
      (--full uses the paper's B1=40, B2=5; default is a faster config)

``--rolling`` switches to the streaming variant: the same panel is
replayed tick by tick through :func:`repro.stream.run_rolling`, which
re-fits the network over a sliding window at a fixed cadence with
warm-started chains, and reports how the inferred lead-lag graph
evolves (edges gained/lost, Jaccard stability, coefficient drift).
"""

import argparse

import numpy as np
import networkx as nx

from repro.core import UoILasso  # noqa: F401  (re-exported API surface check)
from repro.experiments.fig11 import fit_sp50
from repro.metrics import edge_jaccard, selection_report
from repro.var import select_order
from repro.var.granger import edge_list


def rolling_main(args: argparse.Namespace) -> None:
    from repro.core.config import UoILassoConfig, UoIVarConfig
    from repro.stream import FinanceReplaySource, StreamConfig, run_rolling

    config = StreamConfig(
        var=UoIVarConfig(
            order=1,
            lasso=UoILassoConfig(
                n_lambdas=8,
                n_selection_bootstraps=8,
                n_estimation_bootstraps=3,
                solver="cd",
                max_iter=20000,
                random_state=0,
            ),
        ),
        window=60,
        cadence=8,
        max_windows=4,
        verify=args.verify,
    )
    source = FinanceReplaySource(args.companies, n_days=450, seed=0)
    print(f"rolling UoI_VAR(1) over {args.companies} companies: "
          f"window {config.window} weekly diffs, cadence {config.cadence}, "
          f"{config.max_windows} windows, warm-started chains")
    outputs = run_rolling(source, config)
    for fit in outputs.windows:
        edges = int(np.count_nonzero(fit.outputs.coef))
        if fit.diff is None:
            change = "first network"
        else:
            change = (f"+{len(fit.diff.gained)}/-{len(fit.diff.lost)} edges  "
                      f"stability {fit.diff.stability:.2f}  "
                      f"drift {fit.diff.drift:.3f}")
        mode = "warm" if fit.warm else "cold"
        print(f"  window {fit.index}  t={fit.t_end:<4d} {mode}  "
              f"{edges:3d} edges  {change}")
    stab = outputs.extra["stream_stability"]
    print(f"\nrolling snapshot: {len(outputs)} windows, final network has "
          f"{int(np.count_nonzero(outputs.coef))} edges, "
          f"mean window-to-window stability {stab.mean():.2f}")
    if args.verify:
        print("verify: every window bitwise-identical to a cold batch fit")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true",
        help="use the paper's B1=40, B2=5 (slower)",
    )
    parser.add_argument(
        "--rolling", action="store_true",
        help="replay the panel as a stream and track the evolving network",
    )
    parser.add_argument(
        "--companies", type=int, default=10,
        help="panel width for --rolling (default 10; batch mode uses 50)",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="with --rolling: assert each window equals a cold batch fit",
    )
    args = parser.parse_args()
    if args.rolling:
        rolling_main(args)
        return
    b1, b2 = (40, 5) if args.full else (12, 3)

    model, panel, diffs = fit_sp50(b1=b1, b2=b2, rule="1se" if args.full else "min")
    summary = model.network_summary()

    order = select_order(diffs, max_order=3, criterion="bic")
    print(f"BIC order selection over the panel: VAR({order.order}) "
          f"(paper uses VAR(1))")
    graph = model.granger_graph(labels=panel.tickers)

    print(f"data: {diffs.shape[0]} weekly first differences x "
          f"{diffs.shape[1]} companies (synthetic sector-factor panel)")
    print(f"UoI_VAR(1) with B1={b1}, B2={b2}")
    print()
    print(f"edges: {summary['edges']} / {summary['possible_edges']} possible "
          f"(paper: fewer than 40 / 2,500)")
    print(f"graph density: {summary['density']:.4f}")

    degrees = sorted(graph.degree, key=lambda kv: -kv[1])[:8]
    print("\nhighest-degree companies (node size in the paper's figure):")
    for ticker, deg in degrees:
        if deg:
            print(f"  {ticker:>6}: degree {deg}")

    print("\nstrongest directed edges (j -> i means j Granger-causes i):")
    for src, dst, w in edge_list(model.coefs_, labels=panel.tickers)[:12]:
        print(f"  {src:>6} -> {dst:<6}  weight {w:+.4f}")

    # Quality vs the planted truth.
    true_mask = panel.lead_lag != 0
    np.fill_diagonal(true_mask, False)
    p = true_mask.shape[0]
    est = model.coefs_[0] != 0
    est_off = est & ~np.eye(p, dtype=bool)
    rep = selection_report(true_mask, est_off)
    print(f"\nvs planted lead-lag network: precision {rep.precision:.2f}, "
          f"recall {rep.recall:.2f} (tp={rep.tp}, fp={rep.fp}, fn={rep.fn})")
    print(f"edge-set Jaccard similarity: {edge_jaccard(true_mask, est_off):.3f}")

    # A couple of classic graph statistics for the writeup.
    if graph.number_of_edges():
        wcc = max(nx.weakly_connected_components(graph), key=len)
        print(f"largest weakly connected component: {len(wcc)} nodes")


if __name__ == "__main__":
    main()
