#!/usr/bin/env python
"""Profile a distributed UoI fit with the execution tracer.

The paper diagnosed its bottlenecks with profiling tools (Intel
Advisor, MPI timers).  The simulated runtime offers the equivalent:
launch any SPMD job with ``trace=True`` and get a per-rank timeline of
where the modeled time went — compute, consensus Allreduce waits,
one-sided distribution, I/O.

Run:  python examples/trace_profile.py [--ranks N]
"""

import argparse

import numpy as np

from repro.core import UoILassoConfig
from repro.core.parallel import distributed_uoi_lasso
from repro.datasets import INPUT_DATASET, make_regression_file
from repro.simmpi import CORI_KNL, TimeCategory, run_spmd


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=4)
    args = parser.parse_args()

    file, ds = make_regression_file(
        120, 12, n_informative=3, rng=np.random.default_rng(2),
        path="/trace.h5",
    )
    cfg = UoILassoConfig(
        n_lambdas=6, n_selection_bootstraps=4, n_estimation_bootstraps=3,
        random_state=2,
    )
    result = run_spmd(
        args.ranks,
        lambda comm: distributed_uoi_lasso(comm, file, INPUT_DATASET, cfg),
        machine=CORI_KNL,
        trace=True,
    )

    print(f"fit done: support {np.flatnonzero(result.values[0].coef).tolist()} "
          f"(true {np.flatnonzero(ds.support).tolist()})")
    print(f"modeled job time on Cori-KNL model: {result.elapsed:.3e}s")
    print()
    print(result.trace.timeline(width=72))
    print()
    print("per-rank totals (seconds):")
    header = f"{'rank':>5}" + "".join(f"{c.value:>16}" for c in TimeCategory)
    print(header)
    for rank in range(args.ranks):
        row = f"{rank:>5}"
        for cat in TimeCategory:
            row += f"{result.trace.total(rank, cat):>16.3e}"
        print(row)
    n_events = len(result.trace)
    print(f"\n{n_events} trace events recorded")


if __name__ == "__main__":
    main()
