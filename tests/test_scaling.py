"""Tests for the analytic paper-scale models: calibration + shape claims."""

import pytest

from repro.perf.scaling import (
    UoiLassoScalingParams,
    UoiVarScalingParams,
    WEAK_SCALING_GB,
    congestion_factor,
    kron_distribution_time,
    lasso_weak_scaling_cores,
    uoi_lasso_model,
    uoi_var_model,
    var_weak_scaling_cores,
)


class TestTable1Rules:
    def test_lasso_cores_match_paper(self):
        paper = {128: 4352, 256: 8704, 512: 17408, 1024: 34816,
                 2048: 69632, 4096: 139264, 8192: 278528}
        for gb, cores in paper.items():
            assert lasso_weak_scaling_cores(gb) == cores

    def test_var_cores_match_paper(self):
        paper = {128: 2176, 256: 4352, 512: 8704, 1024: 17408,
                 2048: 34816, 4096: 69632, 8192: 139264}
        for gb, cores in paper.items():
            assert var_weak_scaling_cores(gb) == cores


class TestKronCalibration:
    def test_finance_anchor(self):
        """S&P-470: 80 GB lifted, 2,176 cores -> paper measured 16.409 s."""
        t = kron_distribution_time(80 * 1024**3, 2176)
        assert t == pytest.approx(16.409, rel=0.05)

    def test_neuro_anchor(self):
        """Neuro: 1.3 TB lifted, 81,600 cores -> paper measured 3,034.4 s."""
        t = kron_distribution_time(1.3 * 1024**4, 81600)
        assert t == pytest.approx(3034.4, rel=0.05)

    def test_grows_with_cores_and_bytes(self):
        base = kron_distribution_time(10**12, 1000)
        assert kron_distribution_time(2 * 10**12, 1000) > base
        assert kron_distribution_time(10**12, 2000) > base

    def test_validation(self):
        with pytest.raises(ValueError):
            kron_distribution_time(-1, 10)
        with pytest.raises(ValueError):
            kron_distribution_time(10, 0)
        with pytest.raises(ValueError):
            congestion_factor(0)


class TestNeuroCommunicationCalibration:
    def test_neuro_row_matches_paper_comm_and_dist(self):
        row = uoi_var_model(
            UoiVarScalingParams(problem_gb=1331, cores=81600, n_features=192)
        )
        # Communication and distribution calibrated on this run.
        assert row.get("communication") == pytest.approx(1598.72, rel=0.15)
        assert row.get("distribution") == pytest.approx(3034.4, rel=0.05)

    def test_finance_row_within_bands(self):
        row = uoi_var_model(
            UoiVarScalingParams(
                problem_gb=80, cores=2176, n_features=470,
                b1=40, b2=5, q=8, sel_iters=15, est_iters=15,
            )
        )
        # Paper: 376.87 / 4.74 / 16.409 s.
        assert row.get("computation") == pytest.approx(376.87, rel=0.35)
        assert row.get("distribution") == pytest.approx(16.409, rel=0.05)
        assert row.get("communication") < 40


class TestLassoShapes:
    def test_weak_scaling_compute_flat(self):
        comps = [
            uoi_lasso_model(
                UoiLassoScalingParams(gb, lasso_weak_scaling_cores(gb))
            ).get("computation")
            for gb in WEAK_SCALING_GB
        ]
        assert max(comps) / min(comps) < 1.1

    def test_weak_scaling_comm_grows_with_cores(self):
        comms = [
            uoi_lasso_model(
                UoiLassoScalingParams(gb, lasso_weak_scaling_cores(gb))
            ).get("communication")
            for gb in WEAK_SCALING_GB
        ]
        assert all(a < b for a, b in zip(comms, comms[1:]))

    def test_communication_dominates_largest_sizes(self):
        """Discussion: 'for large data sets, the runtime ... is
        determined by communication via MPI_Allreduce'."""
        row = uoi_lasso_model(UoiLassoScalingParams(8192, 278528))
        assert row.get("communication") > row.get("computation")

    def test_computation_dominates_single_node(self):
        """Fig. 2: ~90% computation on one node."""
        row = uoi_lasso_model(UoiLassoScalingParams(16, 68, b1=5, b2=5, q=8))
        assert row.get("computation") / row.total > 0.85

    def test_strong_scaling_superlinear_at_extreme(self):
        """Fig. 6: computation dips below ideal at 139,264 cores."""
        t0 = uoi_lasso_model(UoiLassoScalingParams(1024, 17408)).get("computation")
        t1 = uoi_lasso_model(UoiLassoScalingParams(1024, 139264)).get("computation")
        assert t0 / t1 > 139264 / 17408  # superlinear speedup

    def test_grid_validation(self):
        with pytest.raises(ValueError, match="divisible"):
            UoiLassoScalingParams(16, 70, pb=4, plam=4)
        with pytest.raises(ValueError):
            UoiLassoScalingParams(16, 64, pb=0)
        with pytest.raises(ValueError):
            UoiLassoScalingParams(-1, 64)
        assert UoiLassoScalingParams(16, 64, pb=2, plam=2).admm_cores == 16


class TestVarShapes:
    def test_weak_scaling_compute_flat(self):
        comps = [
            uoi_var_model(
                UoiVarScalingParams(gb, var_weak_scaling_cores(gb), b1=30, b2=20, q=20)
            ).get("computation")
            for gb in WEAK_SCALING_GB
        ]
        assert max(comps) / min(comps) < 1.1

    def test_distribution_overtakes_compute_at_2tb(self):
        """Fig. 9 / Discussion: distribution dominates for >= 2TB."""
        small = uoi_var_model(
            UoiVarScalingParams(128, 2176, b1=30, b2=20, q=20)
        )
        big = uoi_var_model(
            UoiVarScalingParams(2048, 34816, b1=30, b2=20, q=20)
        )
        assert small.get("computation") > small.get("distribution")
        assert big.get("distribution") > 0.9 * big.get("computation")
        huge = uoi_var_model(
            UoiVarScalingParams(8192, 139264, b1=30, b2=20, q=20)
        )
        assert huge.get("distribution") > huge.get("computation")

    def test_strong_scaling_compute_ideal(self):
        t0 = uoi_var_model(UoiVarScalingParams(1024, 4352)).get("computation")
        t1 = uoi_var_model(UoiVarScalingParams(1024, 34816)).get("computation")
        assert t0 / t1 == pytest.approx(8.0, rel=0.01)

    def test_strong_scaling_distribution_grows(self):
        d0 = uoi_var_model(UoiVarScalingParams(1024, 4352)).get("distribution")
        d1 = uoi_var_model(UoiVarScalingParams(1024, 34816)).get("distribution")
        assert d1 > d0

    def test_single_node_computation_dominant(self):
        """Fig. 7: computation is 88% of the single-node runtime."""
        row = uoi_var_model(UoiVarScalingParams(16, 68, b1=5, b2=5, q=8))
        assert row.get("computation") / row.total > 0.85

    def test_fig8_distribution_grows_with_plam(self):
        """'As the P_lambda parallelism increases the Kronecker product
        and vectorization time increases.'"""
        dists = [
            uoi_var_model(
                UoiVarScalingParams(16, 2176, b1=32, b2=32, q=16, pb=pb, plam=plam)
            ).get("distribution")
            for pb, plam in [(8, 2), (4, 4), (2, 8)]
        ]
        assert dists[0] < dists[1] < dists[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            UoiVarScalingParams(0, 10)
        with pytest.raises(ValueError):
            UoiVarScalingParams(16, 10, pb=3, plam=2)
