"""repro.telemetry: recorder primitives, hook acceptance, export formats."""

import json

import numpy as np
import pytest

from repro.core import UoILasso, UoILassoConfig, UoIVar, UoIVarConfig
from repro.datasets import make_sparse_regression, make_sparse_var
from repro.engine import (
    MultiprocessExecutor,
    SerialExecutor,
    SimMpiExecutor,
)
from repro.perf.report import CATEGORY_ORDER, BreakdownRow
from repro.telemetry import (
    CATEGORIES,
    COMPUTATION,
    DATA_IO,
    Recorder,
    TelemetryHook,
    chrome_trace,
    count,
    current_recorder,
    diff_manifests,
    gauge,
    read_manifest,
    resolve_telemetry,
    span,
    tracer_to_chrome,
    use_recorder,
    validate_chrome_trace,
)

LASSO_CFG = UoILassoConfig(
    n_lambdas=5,
    n_selection_bootstraps=3,
    n_estimation_bootstraps=2,
    random_state=12,
)
VAR_CFG = UoIVarConfig(
    order=1,
    lasso=UoILassoConfig(
        n_lambdas=4,
        n_selection_bootstraps=2,
        n_estimation_bootstraps=2,
        random_state=21,
    ),
)


@pytest.fixture(scope="module")
def lasso_data():
    return make_sparse_regression(
        80, 9, n_informative=3, snr=12.0, rng=np.random.default_rng(31)
    )


@pytest.fixture(scope="module")
def var_series():
    return make_sparse_var(3, 48, rng=np.random.default_rng(32)).series


# ---------------------------------------------------------------------------
# Recorder primitives
# ---------------------------------------------------------------------------
class TestRecorder:
    def test_categories_match_perf_report(self):
        assert list(CATEGORIES) == CATEGORY_ORDER

    def test_span_context_manager_records_interval(self):
        rec = Recorder()
        with rec.span("work", COMPUTATION, tag=1):
            pass
        (s,) = rec.spans
        assert s.name == "work"
        assert s.category == COMPUTATION
        assert s.end >= s.start >= 0.0
        assert s.attrs == {"tag": 1}

    def test_add_span_rejects_bad_category_and_interval(self):
        rec = Recorder()
        with pytest.raises(ValueError, match="unknown category"):
            rec.add_span("x", "gpu_time", 0.0, 1.0)
        with pytest.raises(ValueError, match="before start"):
            rec.add_span("x", COMPUTATION, 2.0, 1.0)

    def test_counters_and_gauges(self):
        rec = Recorder()
        rec.count("iters", 3)
        rec.count("iters", 2)
        rec.gauge("resid", 0.5)
        rec.gauge("resid", 0.25)
        assert rec.counter_values() == {"iters": 5.0}
        assert rec.gauge_values() == {"resid": 0.25}

    def test_category_seconds_sums_by_category(self):
        rec = Recorder(clock=lambda: 0.0)
        rec.add_span("a", COMPUTATION, 0.0, 2.0)
        rec.add_span("b", COMPUTATION, 2.0, 3.0)
        rec.add_span("c", DATA_IO, 0.0, 0.5)
        cats = rec.category_seconds()
        assert cats[COMPUTATION] == 3.0
        assert cats[DATA_IO] == 0.5
        assert set(cats) == set(CATEGORIES)

    def test_module_helpers_no_op_without_recorder(self):
        assert current_recorder() is None
        # These must be safe (and free) with telemetry disabled.
        with span("x", COMPUTATION):
            pass
        count("x")
        gauge("x", 1.0)

    def test_use_recorder_installs_and_restores(self):
        rec = Recorder()
        with use_recorder(rec):
            assert current_recorder() is rec
            with span("inside", DATA_IO, nbytes=8):
                pass
            count("hits")
            gauge("level", 2.0)
        assert current_recorder() is None
        assert len(rec) == 1
        assert rec.counter_values() == {"hits": 1.0}
        assert rec.gauge_values() == {"level": 2.0}


class TestResolveTelemetry:
    def test_false_and_true(self):
        assert resolve_telemetry(False) is None
        hook = resolve_telemetry(True)
        assert isinstance(hook, TelemetryHook)
        assert hook.export_dir is None

    def test_path_and_recorder_and_hook(self, tmp_path):
        hook = resolve_telemetry(str(tmp_path))
        assert hook.export_dir == str(tmp_path)
        rec = Recorder()
        wrapped = resolve_telemetry(rec)
        assert wrapped.recorder is rec
        direct = TelemetryHook()
        assert resolve_telemetry(direct) is direct

    def test_env_variable(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert resolve_telemetry(None) is None
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        assert resolve_telemetry(None) is None
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        hook = resolve_telemetry(None)
        assert isinstance(hook, TelemetryHook) and hook.export_dir is None
        monkeypatch.setenv("REPRO_TELEMETRY", str(tmp_path))
        assert resolve_telemetry(None).export_dir == str(tmp_path)
        # explicit False beats the environment
        assert resolve_telemetry(False) is None

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError, match="telemetry must be"):
            resolve_telemetry(3.14)


# ---------------------------------------------------------------------------
# Acceptance: TelemetryHook through the estimators, every backend
# ---------------------------------------------------------------------------
def _executors():
    return [
        ("serial", SerialExecutor()),
        ("multiprocess", MultiprocessExecutor(max_workers=2)),
        ("simmpi", SimMpiExecutor(nranks=2)),
    ]


class TestFitTelemetry:
    @pytest.mark.parametrize("name,executor", _executors())
    def test_lasso_span_count_equals_plan(self, lasso_data, name, executor):
        model = UoILasso(LASSO_CFG).fit(
            lasso_data.X, lasso_data.y, executor=executor, telemetry=True
        )
        tel = model.telemetry_
        planned = sum(v["subproblems"] for v in tel.plan_counts.values())
        assert planned == 5  # 3 selection + 2 estimation
        assert len(tel.subproblem_spans()) == planned
        assert tel.backend == name
        summary = tel.summary()
        assert summary["subproblems"] == planned
        assert summary["solved"] == planned and summary["recovered"] == 0

    @pytest.mark.parametrize("name,executor", _executors())
    def test_var_span_count_equals_plan(self, var_series, name, executor):
        model = UoIVar(VAR_CFG).fit(
            var_series, executor=executor, telemetry=True
        )
        tel = model.telemetry_
        planned = sum(v["subproblems"] for v in tel.plan_counts.values())
        assert len(tel.subproblem_spans()) == planned

    def test_breakdown_matches_category_order(self, lasso_data):
        model = UoILasso(LASSO_CFG).fit(lasso_data.X, lasso_data.y, telemetry=True)
        tel = model.telemetry_
        breakdown = tel.breakdown()
        assert list(breakdown) == CATEGORY_ORDER
        assert all(v >= 0.0 for v in breakdown.values())
        assert breakdown["computation"] > 0.0
        row = tel.to_breakdown_row("demo")
        assert isinstance(row, BreakdownRow)
        assert row.label == "demo"

    def test_disabled_fit_bitwise_identical(self, lasso_data):
        ref = UoILasso(LASSO_CFG).fit(lasso_data.X, lasso_data.y, telemetry=False)
        on = UoILasso(LASSO_CFG).fit(lasso_data.X, lasso_data.y, telemetry=True)
        off = UoILasso(LASSO_CFG).fit(lasso_data.X, lasso_data.y)
        assert ref.coef_.tobytes() == on.coef_.tobytes() == off.coef_.tobytes()
        assert ref.losses_.tobytes() == on.losses_.tobytes()
        assert off.telemetry_ is None and ref.telemetry_ is None

    def test_var_disabled_fit_bitwise_identical(self, var_series):
        ref = UoIVar(VAR_CFG).fit(var_series)
        on = UoIVar(VAR_CFG).fit(var_series, telemetry=True)
        assert ref.vec_coef_.tobytes() == on.vec_coef_.tobytes()

    def test_solver_counters_flow_through(self, lasso_data):
        model = UoILasso(LASSO_CFG).fit(lasso_data.X, lasso_data.y, telemetry=True)
        counters = model.telemetry_.recorder.counter_values()
        assert counters["admm.solves"] > 0
        assert counters["admm.iterations"] >= counters["admm.solves"]
        assert counters["ols.solves"] > 0

    def test_recorder_uninstalled_after_fit(self, lasso_data):
        UoILasso(LASSO_CFG).fit(lasso_data.X, lasso_data.y, telemetry=True)
        assert current_recorder() is None

    def test_recovered_attribution(self, lasso_data, tmp_path):
        from repro.resilience.checkpoint import CheckpointPlan, CheckpointStore

        ckpt = CheckpointPlan(CheckpointStore(tmp_path / "store"))
        UoILasso(LASSO_CFG).fit(lasso_data.X, lasso_data.y, checkpoint=ckpt)
        model = UoILasso(LASSO_CFG).fit(
            lasso_data.X, lasso_data.y, checkpoint=ckpt, telemetry=True
        )
        summary = model.telemetry_.summary()
        assert summary["recovered"] == summary["subproblems"] > 0
        assert summary["solved"] == 0
        for st in summary["stages"].values():
            assert st["recovered"] == st["subproblems"]


# ---------------------------------------------------------------------------
# Export: manifest + Chrome trace
# ---------------------------------------------------------------------------
class TestExport:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory):
        data = make_sparse_regression(
            80, 9, n_informative=3, snr=12.0, rng=np.random.default_rng(31)
        )
        out = tmp_path_factory.mktemp("telemetry")
        model = UoILasso(LASSO_CFG).fit(data.X, data.y, telemetry=out)
        return model.telemetry_, model.telemetry_.exported

    def test_export_writes_manifest_and_trace(self, exported):
        tel, paths = exported
        assert len(paths) == 2
        assert paths[0].endswith("manifest-serial_uoi_lasso.jsonl")
        assert paths[1].endswith("trace-serial_uoi_lasso.json")

    def test_manifest_roundtrip(self, exported):
        tel, paths = exported
        man = read_manifest(paths[0])
        assert man["run"]["kind"] == "serial_uoi_lasso"
        # backend follows REPRO_ENGINE_BACKEND; roundtrip = matches hook
        assert man["run"]["backend"] == tel.backend
        assert man["run"]["schema"] == 1
        # every recorded span appears in the manifest
        assert len(man["spans"]) == len(tel.recorder.spans)
        sub = [s for s in man["spans"] if s["attrs"].get("type") == "subproblem"]
        assert len(sub) == len(tel.subproblem_spans())
        assert man["summary"]["subproblems"] == len(sub)
        assert list(man["summary"]["breakdown"]) == CATEGORY_ORDER
        assert man["counters"] == tel.recorder.counter_values()

    def test_chrome_trace_validates(self, exported):
        tel, paths = exported
        with open(paths[1], "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert validate_chrome_trace(doc) == []
        assert len(doc["traceEvents"]) == len(tel.recorder.spans)
        for ev in doc["traceEvents"]:
            assert ev["ph"] == "X"
            assert ev["ts"] >= 0.0 and ev["dur"] >= 0.0

    def test_chrome_trace_from_recorder(self):
        rec = Recorder(clock=lambda: 0.0)
        rec.add_span("a", COMPUTATION, 0.0, 1.5, stage="selection")
        rec.count("hits", 2)
        doc = chrome_trace(rec, tid=3)
        assert validate_chrome_trace(doc) == []
        (ev,) = doc["traceEvents"]
        assert ev["tid"] == 3
        assert ev["dur"] == pytest.approx(1.5e6)
        assert doc["otherData"]["counters"] == {"hits": 2.0}

    def test_validator_flags_malformed(self):
        assert validate_chrome_trace({"events": []})
        assert validate_chrome_trace(42)
        errs = validate_chrome_trace(
            {"traceEvents": [{"name": "x", "ph": "??", "ts": -1.0}]}
        )
        assert any("phase" in e for e in errs)
        assert any("ts" in e for e in errs)
        # complete event without dur
        errs = validate_chrome_trace(
            {"traceEvents": [{"name": "x", "ph": "X", "ts": 0.0}]}
        )
        assert any("dur" in e for e in errs)
        # out-of-order on one row
        errs = validate_chrome_trace(
            {
                "traceEvents": [
                    {"name": "a", "ph": "X", "ts": 5.0, "dur": 1.0},
                    {"name": "b", "ph": "X", "ts": 1.0, "dur": 1.0},
                ]
            }
        )
        assert any("backwards" in e for e in errs)

    def test_diff_manifests(self, exported, tmp_path):
        _, paths = exported
        man = read_manifest(paths[0])
        text = diff_manifests(man, man)
        assert "delta +0" in text
        assert "breakdown (s)" in text
        for cat in CATEGORY_ORDER:
            assert cat in text

    def test_simmpi_tracer_bridge(self):
        from repro.simmpi.clock import TimeCategory
        from repro.simmpi.trace import Tracer

        tracer = Tracer()
        tracer.record(0, TimeCategory.COMPUTE, 0.0, 1.0)
        tracer.record(1, TimeCategory.COMMUNICATION, 0.5, 2.0)
        doc = tracer_to_chrome(tracer)
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["virtual_time"] is True
        cats = {ev["cat"] for ev in doc["traceEvents"]}
        assert cats == {"computation", "communication"}
        tids = {ev["tid"] for ev in doc["traceEvents"]}
        assert tids == {0, 1}


# ---------------------------------------------------------------------------
# Distributed drivers
# ---------------------------------------------------------------------------
class TestDistributedTelemetry:
    def test_distributed_lasso_per_rank_hooks(self, tmp_path):
        from repro.core.parallel import distributed_uoi_lasso
        from repro.pfs import SimH5File
        from repro.simmpi import LAPTOP, run_spmd

        cfg = UoILassoConfig(
            n_lambdas=4,
            n_selection_bootstraps=3,
            n_estimation_bootstraps=2,
            random_state=5,
        )
        ds = make_sparse_regression(
            96, 10, n_informative=3, snr=15.0, rng=np.random.default_rng(11)
        )
        file = SimH5File("/tel.h5")
        file.create_dataset("data", np.column_stack([ds.y, ds.X]))
        out = tmp_path / "dist"
        res = run_spmd(
            4,
            lambda comm: distributed_uoi_lasso(
                comm, file, "data", cfg, telemetry=str(out)
            ),
            machine=LAPTOP,
        )
        planned = None
        for rank, value in enumerate(res.values):
            tel = value.telemetry
            assert tel.tid == rank
            assert tel.backend == "simmpi"
            owned = sum(v["subproblems"] for v in tel.plan_counts.values())
            assert len(tel.subproblem_spans()) == owned
            planned = owned
            # only world rank 0 exports files
            assert (tel.export_dir is not None) == (rank == 0)
        assert planned is not None
        # the rank-0 export is on disk and valid
        tel0 = res.values[0].telemetry
        assert len(tel0.exported) == 2
        with open(tel0.exported[1], "r", encoding="utf-8") as fh:
            assert validate_chrome_trace(json.load(fh)) == []
        man = read_manifest(tel0.exported[0])
        assert man["run"]["backend"] == "simmpi"
        # tier-2 shuffles attributed to DISTRIBUTION
        assert man["summary"]["breakdown"]["distribution"] > 0.0
        assert man["counters"]["tier2.gets"] > 0

    def test_distributed_telemetry_does_not_change_results(self):
        from repro.core.parallel import distributed_uoi_lasso
        from repro.pfs import SimH5File
        from repro.simmpi import LAPTOP, run_spmd

        cfg = UoILassoConfig(
            n_lambdas=4,
            n_selection_bootstraps=2,
            n_estimation_bootstraps=2,
            random_state=5,
        )
        ds = make_sparse_regression(
            64, 8, n_informative=3, snr=15.0, rng=np.random.default_rng(7)
        )
        file = SimH5File("/tel2.h5")
        file.create_dataset("data", np.column_stack([ds.y, ds.X]))
        run = lambda **kw: run_spmd(
            2,
            lambda comm: distributed_uoi_lasso(comm, file, "data", cfg, **kw),
            machine=LAPTOP,
        ).values[0]
        ref = run()
        got = run(telemetry=True)
        assert ref.coef.tobytes() == got.coef.tobytes()
        assert ref.losses.tobytes() == got.losses.tobytes()
