"""Tests for VAR forecasting and residual diagnostics."""

import numpy as np
import pytest

from repro.var import (
    VARProcess,
    diagnose,
    forecast,
    forecast_intervals,
    forecast_mse,
    ljung_box,
    residuals,
)


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    A = np.array([[0.6, 0.2], [0.0, 0.5]])
    proc = VARProcess([A])
    series = proc.simulate(800, rng)
    return A, series


class TestForecast:
    def test_one_step_matches_recursion(self, fitted):
        A, series = fitted
        f = forecast([A], series, 1)
        np.testing.assert_allclose(f[0], A @ series[-1])

    def test_multi_step_chains(self, fitted):
        A, series = fitted
        f = forecast([A], series, 3)
        np.testing.assert_allclose(f[1], A @ f[0])
        np.testing.assert_allclose(f[2], A @ f[1])

    def test_var2_uses_both_lags(self):
        A1 = np.eye(2) * 0.4
        A2 = np.eye(2) * 0.3
        hist = np.array([[1.0, 2.0], [3.0, 4.0]])  # t-2, t-1
        f = forecast([A1, A2], hist, 1)
        np.testing.assert_allclose(f[0], A1 @ hist[1] + A2 @ hist[0])

    def test_intercept_included(self, fitted):
        A, series = fitted
        mu = np.array([1.0, -1.0])
        f = forecast([A], series, 1, intercept=mu)
        np.testing.assert_allclose(f[0], mu + A @ series[-1])

    def test_stable_forecast_decays_to_drift(self, fitted):
        A, series = fitted
        f = forecast([A], series, 200)
        np.testing.assert_allclose(f[-1], np.zeros(2), atol=1e-6)

    def test_validation(self, fitted):
        A, series = fitted
        with pytest.raises(ValueError, match="steps"):
            forecast([A], series, 0)
        with pytest.raises(ValueError, match="history"):
            forecast([A, A], series[:1], 1)
        with pytest.raises(ValueError, match="intercept"):
            forecast([A], series, 1, intercept=np.ones(3))


class TestForecastIntervals:
    def test_band_contains_mean(self, fitted):
        A, series = fitted
        fi = forecast_intervals(
            [A], series, 4, n_paths=300, rng=np.random.default_rng(1)
        )
        assert np.all(fi.lower <= fi.mean + 1e-9)
        assert np.all(fi.mean <= fi.upper + 1e-9)

    def test_wider_level_wider_band(self, fitted):
        A, series = fitted
        rng1, rng2 = np.random.default_rng(2), np.random.default_rng(2)
        narrow = forecast_intervals([A], series, 3, level=0.5, rng=rng1)
        wide = forecast_intervals([A], series, 3, level=0.95, rng=rng2)
        assert np.all(wide.upper - wide.lower >= narrow.upper - narrow.lower)

    def test_empirical_coverage_near_nominal(self, fitted):
        """One-step band at level 0.9 covers ~90% of simulated futures."""
        A, series = fitted
        proc = VARProcess([A])
        fi = forecast_intervals(
            [A], series, 1, level=0.9, n_paths=2000,
            rng=np.random.default_rng(3),
        )
        rng = np.random.default_rng(4)
        hits = 0
        trials = 400
        for _ in range(trials):
            nxt = A @ series[-1] + rng.standard_normal(2)
            if np.all(fi.lower[0] <= nxt) and np.all(nxt <= fi.upper[0]):
                hits += 1
        # Joint coverage of two independent 90% bands ~ 0.81.
        assert 0.68 <= hits / trials <= 0.93

    def test_validation(self, fitted):
        A, series = fitted
        with pytest.raises(ValueError, match="level"):
            forecast_intervals([A], series, 1, level=1.5)
        with pytest.raises(ValueError, match="n_paths"):
            forecast_intervals([A], series, 1, n_paths=1)


class TestForecastMse:
    def test_true_model_near_noise_floor(self, fitted):
        A, series = fitted
        mse = forecast_mse([A], series)
        assert mse == pytest.approx(1.0, rel=0.15)  # unit noise variance

    def test_null_model_worse(self, fitted):
        A, series = fitted
        good = forecast_mse([A], series)
        null = forecast_mse([np.zeros((2, 2))], series)
        assert null > good

    def test_validation(self, fitted):
        A, _ = fitted
        with pytest.raises(ValueError, match="too short"):
            forecast_mse([A], np.ones((2, 2)), steps=5)


class TestDiagnostics:
    def test_residuals_of_true_model_are_noise(self, fitted):
        A, series = fitted
        res = residuals(series, [A])
        assert res.shape == (799, 2)
        assert res.std(axis=0) == pytest.approx(np.ones(2), rel=0.15)

    def test_ljung_box_passes_white_noise(self):
        rng = np.random.default_rng(5)
        res = rng.standard_normal((500, 3))
        lb = ljung_box(res)
        assert lb.passed()
        assert lb.p_value.shape == (3,)

    def test_ljung_box_rejects_autocorrelated(self):
        rng = np.random.default_rng(6)
        x = np.zeros((500, 1))
        for t in range(1, 500):
            x[t] = 0.7 * x[t - 1] + rng.standard_normal(1)
        assert not ljung_box(x).passed()

    def test_diagnose_true_model_ok(self, fitted):
        A, series = fitted
        assert diagnose(series, [A]).ok()

    def test_diagnose_flags_misspecification(self, fitted):
        _, series = fitted
        d = diagnose(series, [np.zeros((2, 2))])
        assert d.stable  # zero dynamics are stable...
        assert not d.whiteness.passed()  # ...but residuals keep structure
        assert not d.ok()

    def test_diagnose_flags_unstable_fit(self, fitted):
        _, series = fitted
        d = diagnose(series, [np.eye(2) * 1.2])
        assert not d.stable
        assert d.spectral_radius == pytest.approx(1.2)

    def test_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            ljung_box(np.ones(5))
        with pytest.raises(ValueError, match="lags"):
            ljung_box(np.ones((10, 2)), lags=10)
