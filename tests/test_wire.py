"""Shared wire codec: bitwise ndarray round-trips, blobs, typed errors.

Both socket protocols (service front end and elastic workers) ride
this one codec; its headline property is that arrays survive the trip
**bitwise**, which is what lets wire-served results be compared with
``array_equal`` against direct fits.
"""

import json
import socket
import threading

import numpy as np
import pytest

from repro.wire import (
    LineChannel,
    decode_array,
    decode_arrays,
    decode_blob,
    decode_payload_table,
    encode_array,
    encode_arrays,
    encode_blob,
    encode_payload_table,
    error_map,
    error_to_wire,
    raise_from_wire,
)


class TestArrayCodec:
    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(12, dtype=np.float64).reshape(3, 4),
            np.array([np.nan, np.inf, -np.inf, -0.0]),
            np.float64(3.14159) + np.zeros(()),  # 0-d stays 0-d
            np.arange(6, dtype=np.int32),
            np.zeros((0, 5)),
            np.array([True, False]),
        ],
        ids=["2d", "nonfinite", "0d", "int32", "empty", "bool"],
    )
    def test_bitwise_round_trip(self, arr):
        enc = encode_array(arr)
        json.dumps(enc)  # frame must be JSON-serializable as-is
        out = decode_array(enc)
        assert out.dtype == np.asarray(arr).dtype
        assert out.shape == np.asarray(arr).shape
        assert out.tobytes() == np.asarray(arr).tobytes()

    def test_fortran_order_normalizes_to_c(self):
        arr = np.asfortranarray(np.arange(12, dtype=np.float64).reshape(3, 4))
        out = decode_array(encode_array(arr))
        assert np.array_equal(out, arr)
        assert out.flags["C_CONTIGUOUS"]

    def test_decoded_array_is_writable(self):
        out = decode_array(encode_array(np.arange(3.0)))
        out[0] = 99.0  # frombuffer views are read-only; decode must copy
        assert out[0] == 99.0

    def test_arrays_and_payload_tables(self):
        payload = {"coef": np.arange(4.0), "loss": np.zeros(())}
        table = {"sel/k0": payload, "sel/k1": {"coef": np.ones(2)}}
        round_arrays = decode_arrays(encode_arrays(payload))
        assert set(round_arrays) == {"coef", "loss"}
        round_table = decode_payload_table(encode_payload_table(table))
        assert set(round_table) == {"sel/k0", "sel/k1"}
        assert np.array_equal(round_table["sel/k0"]["coef"], np.arange(4.0))


class TestBlobs:
    def test_round_trips_arbitrary_objects(self):
        exc = RuntimeError("boom")
        exc.add_note("engine backend=elastic stage=selection")
        out = decode_blob(encode_blob(exc))
        assert isinstance(out, RuntimeError)
        assert str(out) == "boom"
        assert out.__notes__ == ["engine backend=elastic stage=selection"]


class TestTypedErrors:
    def test_error_frame_shape(self):
        frame = error_to_wire(TimeoutError("too slow"))
        assert frame == {
            "ok": False, "error": "TimeoutError", "message": "too slow",
        }

    def test_raise_from_wire_typed(self):
        with pytest.raises(TimeoutError, match="too slow"):
            raise_from_wire(error_to_wire(TimeoutError("too slow")))

    def test_unknown_error_degrades_to_runtime(self):
        with pytest.raises(RuntimeError, match="weird"):
            raise_from_wire({"ok": False, "error": "Martian", "message": "weird"})

    def test_error_map_extends_defaults(self):
        class Custom(Exception):
            pass

        table = error_map(Custom)
        assert table["Custom"] is Custom
        assert table["RuntimeError"] is RuntimeError
        with pytest.raises(Custom):
            raise_from_wire(
                {"ok": False, "error": "Custom", "message": "x"}, table
            )


class TestLineChannel:
    def test_send_recv_and_eof(self):
        server, client = socket.socketpair()
        a, b = LineChannel(server), LineChannel(client)
        try:
            a.send({"op": "ping", "n": 1})
            assert b.recv() == {"op": "ping", "n": 1}
            b.send({"op": "pong"})
            assert a.recv() == {"op": "pong"}
            b.close()
            assert a.recv() is None  # EOF is a departure, not an error
        finally:
            a.close()
            b.close()

    def test_concurrent_close_surfaces_as_connection_error(self):
        """A channel closed by another thread mid-send must raise an
        OSError (the one shape peers already handle), not io's
        ValueError."""
        server, client = socket.socketpair()
        chan = LineChannel(server)
        peer = LineChannel(client)
        chan.close()
        with pytest.raises(OSError):
            chan.send({"op": "ping"})
        peer.close()

    def test_blank_lines_skipped(self):
        server, client = socket.socketpair()
        a, b = LineChannel(server), LineChannel(client)
        try:
            server.sendall(b"\n  \n")
            a.send({"op": "real"})

            got = []
            reader = threading.Thread(target=lambda: got.append(b.recv()))
            reader.start()
            reader.join(5.0)
            assert got == [{"op": "real"}]
        finally:
            a.close()
            b.close()
