"""Streaming jobs through the service: admission, progress, cancel, wire.

A ``kind="stream"`` job replays its series through the rolling re-fit
loop — one engine plan per window — so the service contract differs
from batch jobs in pinned ways: stream jobs never batch, progress
counts windows, and cancellation lands at window boundaries.
"""

import threading

import numpy as np
import pytest

from repro.core.config import UoILassoConfig, UoIVarConfig
from repro.engine import SerialExecutor
from repro.engine.executors import Executor
from repro.service import (
    CANCELLED,
    AdmissionError,
    JobCancelled,
    JobSpec,
    Service,
    ServiceClient,
)
from repro.service.jobs import JOB_KINDS, StreamJobPlan
from repro.stream import SpikeRateSource, StreamConfig, expected_windows, run_rolling

VAR_CFG = UoIVarConfig(
    order=1,
    lasso=UoILassoConfig(
        n_lambdas=4,
        n_selection_bootstraps=3,
        n_estimation_bootstraps=3,
        solver="cd",
        random_state=9,
    ),
)
STREAM_CFG = StreamConfig(var=VAR_CFG, window=24, cadence=6)


@pytest.fixture(scope="module")
def series():
    return np.array(list(SpikeRateSource(3, seed=33, max_ticks=42)))


def _spec(series, config=STREAM_CFG, **kwargs):
    return JobSpec(kind="stream", data={"series": series}, config=config, **kwargs)


class TestAdmission:
    def test_job_kinds_pinned(self):
        assert JOB_KINDS == ("lasso", "var", "stream")

    def test_missing_series_rejected(self):
        with pytest.raises(AdmissionError, match="missing data"):
            JobSpec(kind="stream", data={}).validate()

    def test_wrong_config_type_rejected(self, series):
        with pytest.raises(AdmissionError, match="StreamConfig"):
            JobSpec(
                kind="stream", data={"series": series}, config=VAR_CFG
            ).validate()

    def test_too_short_series_rejected(self):
        short = np.zeros((5, 3))
        with pytest.raises(AdmissionError, match="too short"):
            _spec(short).build_plan()

    def test_one_d_series_rejected(self):
        with pytest.raises(AdmissionError, match="2-D"):
            _spec(np.zeros(40)).build_plan()

    def test_plan_stub_describes_window_schedule(self, series):
        plan = _spec(series).build_plan()
        assert isinstance(plan, StreamJobPlan)
        want = expected_windows(STREAM_CFG, len(series))
        assert want == 4  # 24 + 3 * 6 == 42
        desc = plan.describe()
        assert desc["stages"]["stream"]["subproblems"] == want
        assert plan.meta()["windows"] == want


class TestLifecycle:
    def test_runs_to_done_and_matches_direct_rolling(self, series):
        with Service(workers=1, verify=True) as svc:
            job_id = svc.submit(_spec(series))
            events = list(svc.stream_progress(job_id))
            out = svc.results(job_id, timeout=120.0)
            status = svc.status(job_id)
        assert status["state"] == "done"
        assert status["progress"] == {"stream": {"done": 4, "total": 4}}
        snapshots = [e for e in events if not e.get("final")]
        assert [s["done"] for s in snapshots] == [1, 2, 3, 4]
        direct = run_rolling(iter(series), STREAM_CFG)
        assert len(out.windows) == len(direct.windows)
        for sw, dw in zip(out.windows, direct.windows):
            assert np.array_equal(sw.outputs.supports, dw.outputs.supports)
            assert np.array_equal(sw.outputs.coef, dw.outputs.coef)

    def test_stream_jobs_never_batch(self, series):
        with Service(workers=1, batching=True, max_batch=4) as svc:
            client = ServiceClient(svc)
            ids = [
                client.submit("stream", {"series": series}, config=STREAM_CFG)
                for _ in range(2)
            ]
            for job_id in ids:
                client.results(job_id, timeout=120.0)
                assert svc.status(job_id)["state"] == "done"
            sizes = [svc._jobs[j].batch_size for j in ids]
        assert sizes == [1, 1]

    def test_final_result_persisted_to_store(self, series, tmp_path):
        with Service(workers=1, store_root=tmp_path / "store") as svc:
            job_id = svc.submit(_spec(series, idempotency_key="s1"))
            out = svc.results(job_id, timeout=120.0)
            record = svc.store.get(f"{svc._jobs[job_id].store_key}/result")
        assert record is not None
        assert np.array_equal(record["coef"], out.coef)
        assert "extra_stream_stability" in record

    def test_idempotent_resubmit_returns_same_job(self, series):
        with Service(workers=1) as svc:
            first = svc.submit(_spec(series, idempotency_key="dup"))
            svc.results(first, timeout=120.0)
            second = svc.submit(_spec(series, idempotency_key="dup"))
        assert second == first


class _GatedExecutor(Executor):
    """Serial backend whose first run_stage call waits for a release."""

    name = "gated"

    def __init__(self, started: threading.Event, release: threading.Event):
        self.inner = SerialExecutor()
        self.started = started
        self.release = release
        self.calls = 0

    def run_stage(self, plan, stage, chains, hooks):
        self.calls += 1
        if self.calls == 1:
            self.started.set()
            assert self.release.wait(30.0)
        return self.inner.run_stage(plan, stage, chains, hooks)


class TestCancellation:
    def test_cancel_lands_at_window_boundary(self, series):
        started, release = threading.Event(), threading.Event()
        gated = _GatedExecutor(started, release)
        with Service(workers=1, executor_factory=lambda name: gated) as svc:
            job_id = svc.submit(_spec(series))
            assert started.wait(30.0)  # window 0 is mid-fit
            assert svc.cancel(job_id) is True
            release.set()
            with pytest.raises(JobCancelled):
                svc.results(job_id, timeout=120.0)
            status = svc.status(job_id)
        assert status["state"] == CANCELLED
        # The in-flight window completed (atomic unit), later ones never ran.
        assert status["progress"]["stream"]["done"] == 1

    def test_cancel_while_queued_never_runs(self, series):
        started, release = threading.Event(), threading.Event()
        gated = _GatedExecutor(started, release)
        with Service(workers=1, executor_factory=lambda name: gated) as svc:
            blocker = svc.submit(_spec(series))
            assert started.wait(30.0)
            queued = svc.submit(_spec(series, tenant="other"))
            assert svc.cancel(queued) is True
            release.set()
            svc.results(blocker, timeout=120.0)
            assert svc.status(queued)["state"] == CANCELLED
            assert svc.status(queued)["progress"]["stream"]["done"] == 0


class TestWire:
    def test_socket_submit_with_nested_config(self, series):
        from repro.service.server import (
            ServiceServer,
            SocketServiceClient,
            config_from_wire,
            config_to_wire,
        )

        round_tripped = config_from_wire("stream", config_to_wire(STREAM_CFG))
        assert round_tripped == STREAM_CFG

        with Service(workers=1) as svc, ServiceServer(svc) as server:
            client = SocketServiceClient(*server.address)
            job_id = client.submit(
                "stream", {"series": series}, config=STREAM_CFG
            )
            arrays = client.results(job_id, timeout=120.0)
        direct = run_rolling(iter(series), STREAM_CFG)
        assert np.array_equal(arrays["coef"], direct.coef)
        assert np.array_equal(
            arrays["extra_stream_t_end"],
            np.array([w.t_end for w in direct.windows]),
        )

    def test_wire_rejects_bad_stream_config(self):
        from repro.service.server import config_from_wire

        with pytest.raises(AdmissionError, match="invalid stream config"):
            config_from_wire("stream", {"no_such_field": 1})
