"""Tests for the execution tracer (profiler-style timelines)."""

import numpy as np
import pytest

from repro.simmpi import CORI_KNL, TimeCategory, Tracer, run_spmd
from repro.simmpi.trace import TraceEvent


class TestTracer:
    def test_record_and_filter(self):
        t = Tracer()
        t.record(0, TimeCategory.COMPUTE, 0.0, 1.0)
        t.record(1, TimeCategory.COMMUNICATION, 0.5, 2.0)
        t.record(0, TimeCategory.COMPUTE, 1.0, 1.5)
        assert len(t) == 3
        assert len(t.events(rank=0)) == 2
        assert len(t.events(category=TimeCategory.COMMUNICATION)) == 1

    def test_zero_length_events_dropped(self):
        t = Tracer()
        t.record(0, TimeCategory.COMPUTE, 1.0, 1.0)
        assert len(t) == 0

    def test_backwards_interval_rejected(self):
        with pytest.raises(ValueError, match="before"):
            Tracer().record(0, TimeCategory.COMPUTE, 2.0, 1.0)

    def test_events_sorted_by_start(self):
        t = Tracer()
        t.record(0, TimeCategory.COMPUTE, 5.0, 6.0)
        t.record(0, TimeCategory.COMPUTE, 1.0, 2.0)
        starts = [e.start for e in t.events()]
        assert starts == sorted(starts)

    def test_total_and_span(self):
        t = Tracer()
        t.record(2, TimeCategory.DATA_IO, 0.0, 1.0)
        t.record(2, TimeCategory.DATA_IO, 3.0, 4.5)
        assert t.total(2, TimeCategory.DATA_IO) == pytest.approx(2.5)
        assert t.span() == (0.0, 4.5)
        assert Tracer().span() == (0.0, 0.0)

    def test_duration_property(self):
        e = TraceEvent(0, TimeCategory.COMPUTE, 1.0, 3.5)
        assert e.duration == 2.5

    def test_timeline_rendering(self):
        t = Tracer()
        t.record(0, TimeCategory.COMPUTE, 0.0, 0.5)
        t.record(0, TimeCategory.COMMUNICATION, 0.5, 1.0)
        t.record(1, TimeCategory.DATA_IO, 0.0, 1.0)
        out = t.timeline(width=20)
        lines = out.splitlines()
        assert "rank   0" in lines[1]
        assert "C" in lines[1] and "M" in lines[1]
        assert "I" in lines[2]

    def test_timeline_empty(self):
        assert Tracer().timeline() == "(no events)"

    def test_timeline_width_validation(self):
        with pytest.raises(ValueError, match="width"):
            Tracer().timeline(width=2)


class TestTracedRuns:
    def test_trace_totals_match_clock_breakdowns(self):
        def prog(comm):
            comm.clock.charge_compute(0.02 * (comm.rank + 1))
            comm.allreduce(np.ones(50_000))
            comm.barrier()
            return comm.clock.snapshot()

        res = run_spmd(3, prog, machine=CORI_KNL, trace=True)
        assert res.trace is not None
        for rank, snap in enumerate(res.values):
            for cat in TimeCategory:
                assert res.trace.total(rank, cat) == pytest.approx(
                    snap[cat.value], abs=1e-12
                )

    def test_untraced_run_has_no_tracer(self):
        res = run_spmd(2, lambda comm: comm.barrier())
        assert res.trace is None

    def test_trace_shows_straggler_wait(self):
        """The fast ranks' barrier wait shows up as communication."""

        def prog(comm):
            if comm.rank == 0:
                comm.clock.charge_compute(1.0)
            comm.barrier()

        res = run_spmd(2, prog, machine=CORI_KNL, trace=True)
        wait = res.trace.total(1, TimeCategory.COMMUNICATION)
        assert wait == pytest.approx(1.0, rel=0.01)
