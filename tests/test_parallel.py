"""Integration tests: distributed UoI vs the serial reference."""

import numpy as np
import pytest

from repro.core import UoILasso, UoILassoConfig, UoIVar, UoIVarConfig
from repro.core.parallel import (
    DistributedUoIResult,
    ProcessGrid,
    distributed_uoi_lasso,
    distributed_uoi_var,
)
from repro.datasets import make_sparse_regression, make_sparse_var
from repro.pfs import SimH5File
from repro.simmpi import LAPTOP, run_spmd, SpmdError
from repro.var import partition_coefficients

CFG = UoILassoConfig(
    n_lambdas=6,
    n_selection_bootstraps=4,
    n_estimation_bootstraps=3,
    random_state=5,
)


@pytest.fixture(scope="module")
def lasso_setup():
    ds = make_sparse_regression(
        96, 10, n_informative=3, snr=15.0, rng=np.random.default_rng(11)
    )
    file = SimH5File("/par.h5")
    file.create_dataset("data", np.column_stack([ds.y, ds.X]))
    serial = UoILasso(CFG).fit(ds.X, ds.y)
    return ds, file, serial


class TestDistributedUoILasso:
    def test_matches_serial(self, lasso_setup):
        ds, file, serial = lasso_setup
        res = run_spmd(
            4,
            lambda comm: distributed_uoi_lasso(comm, file, "data", CFG),
            machine=LAPTOP,
        )
        out = res.values[0]
        assert isinstance(out, DistributedUoIResult)
        np.testing.assert_allclose(out.coef, serial.coef_, atol=5e-4)
        np.testing.assert_array_equal(out.winners, serial.winners_)
        np.testing.assert_allclose(out.lambdas, serial.lambdas_)

    def test_identical_on_all_ranks(self, lasso_setup):
        _, file, _ = lasso_setup
        res = run_spmd(
            3,
            lambda comm: distributed_uoi_lasso(comm, file, "data", CFG),
            machine=LAPTOP,
        )
        ref = res.values[0]
        for v in res.values[1:]:
            np.testing.assert_array_equal(v.coef, ref.coef)
            np.testing.assert_array_equal(v.supports, ref.supports)

    @pytest.mark.parametrize("pb,plam,world", [(2, 1, 4), (1, 2, 4), (2, 2, 8), (4, 1, 8)])
    def test_grids_match_serial(self, lasso_setup, pb, plam, world):
        ds, file, serial = lasso_setup
        res = run_spmd(
            world,
            lambda comm: distributed_uoi_lasso(
                comm, file, "data", CFG, pb=pb, plam=plam
            ),
            machine=LAPTOP,
        )
        np.testing.assert_allclose(res.values[0].coef, serial.coef_, atol=1e-3)

    def test_supports_match_serial(self, lasso_setup):
        _, file, serial = lasso_setup
        res = run_spmd(
            4,
            lambda comm: distributed_uoi_lasso(comm, file, "data", CFG),
            machine=LAPTOP,
        )
        np.testing.assert_array_equal(res.values[0].supports, serial.supports_)

    def test_fit_intercept_rejected(self, lasso_setup):
        _, file, _ = lasso_setup
        bad = CFG.with_(fit_intercept=True)

        def prog(comm):
            distributed_uoi_lasso(comm, file, "data", bad)

        with pytest.raises(SpmdError, match="fit_intercept"):
            run_spmd(2, prog, machine=LAPTOP)


class TestProcessGrid:
    def test_build_partitions_ranks(self):
        def prog(comm):
            grid = ProcessGrid.build(comm, pb=2, plam=2)
            return grid.b, grid.l, grid.cell.rank, grid.cell.size

        res = run_spmd(8, prog, machine=LAPTOP)
        cells = {(b, l) for b, l, _, _ in res.values}
        assert cells == {(0, 0), (0, 1), (1, 0), (1, 1)}
        assert all(size == 2 for _, _, _, size in res.values)

    def test_ownership_round_robin(self):
        def prog(comm):
            grid = ProcessGrid.build(comm, pb=2, plam=1)
            return [k for k in range(6) if grid.owns_bootstrap(k)], [
                j for j in range(4) if grid.owns_lambda(j)
            ]

        res = run_spmd(4, prog, machine=LAPTOP)
        assert res.values[0][0] == [0, 2, 4]
        assert res.values[-1][0] == [1, 3, 5]
        assert res.values[0][1] == [0, 1, 2, 3]  # plam=1 owns all

    def test_indivisible_world_rejected(self):
        def prog(comm):
            ProcessGrid.build(comm, pb=2, plam=2)

        with pytest.raises(SpmdError, match="divisible"):
            run_spmd(6, prog, machine=LAPTOP)

    def test_bad_grid_params(self):
        def prog(comm):
            ProcessGrid.build(comm, pb=0)

        with pytest.raises(SpmdError, match="pb"):
            run_spmd(2, prog, machine=LAPTOP)


class TestDistributedUoIVar:
    def test_matches_serial(self):
        sv = make_sparse_var(4, 60, rng=np.random.default_rng(17))
        vcfg = UoIVarConfig(
            order=1,
            lasso=UoILassoConfig(
                n_lambdas=5,
                n_selection_bootstraps=3,
                n_estimation_bootstraps=2,
                random_state=6,
            ),
        )
        serial = UoIVar(vcfg).fit(sv.series)
        res = run_spmd(
            4,
            lambda comm: distributed_uoi_var(
                comm, sv.series if comm.rank < 2 else None, vcfg, n_readers=2
            ),
            machine=LAPTOP,
        )
        out = res.values[0]
        # The serial reference solves per-column ADMM paths; the
        # distributed driver solves the lifted consensus problem — the
        # same optimization up to stopping-rule differences, so supports
        # may disagree on marginal features near the threshold.  The
        # winners, losses and all solidly-selected coefficients must
        # agree.
        np.testing.assert_array_equal(out.winners, serial.winners_)
        np.testing.assert_allclose(out.losses, serial.losses_, rtol=0.05)
        coefs, _ = partition_coefficients(out.coef, 4, 1)
        both = (coefs[0] != 0) & (serial.coefs_[0] != 0)
        overlap = both.sum() / max((serial.coefs_[0] != 0).sum(), 1)
        assert overlap >= 0.8
        np.testing.assert_allclose(
            coefs[0][both], serial.coefs_[0][both], atol=0.15
        )

    def test_all_ranks_agree(self):
        sv = make_sparse_var(3, 40, rng=np.random.default_rng(18))
        vcfg = UoIVarConfig(
            order=1,
            lasso=UoILassoConfig(
                n_lambdas=4,
                n_selection_bootstraps=2,
                n_estimation_bootstraps=2,
                random_state=7,
            ),
        )
        res = run_spmd(
            3,
            lambda comm: distributed_uoi_var(
                comm, sv.series if comm.rank < 1 else None, vcfg, n_readers=1
            ),
            machine=LAPTOP,
        )
        for v in res.values[1:]:
            np.testing.assert_array_equal(v.coef, res.values[0].coef)

    def test_reader_must_have_series(self):
        vcfg = UoIVarConfig()

        def prog(comm):
            distributed_uoi_var(comm, None, vcfg, n_readers=1)

        with pytest.raises(SpmdError, match="series"):
            run_spmd(2, prog, machine=LAPTOP)


class TestDistributedCvLasso:
    """Fig. 1c: Tier-2 randomized distribution reused for cross-validation."""

    @pytest.fixture(scope="class")
    def setup(self):
        from repro.datasets import INPUT_DATASET, make_regression_file

        file, ds = make_regression_file(
            100, 12, n_informative=3, rng=np.random.default_rng(9),
            path="/cvtest.h5",
        )
        return file, ds, INPUT_DATASET

    def test_matches_serial_cv(self, setup):
        from repro.core.parallel import distributed_cv_lasso
        from repro.linalg import cv_lasso

        file, ds, name = setup
        res = run_spmd(
            4,
            lambda comm: distributed_cv_lasso(
                comm, file, name, n_lambdas=10, k=4, random_state=9
            ),
            machine=LAPTOP,
        )
        beta, lam, cv_loss = res.values[0]
        serial = cv_lasso(
            ds.X, ds.y, n_lambdas=10, k=4, rng=np.random.default_rng(9)
        )
        assert lam == pytest.approx(serial.lam)
        np.testing.assert_allclose(cv_loss, serial.cv_loss, rtol=0.02)
        np.testing.assert_array_equal(beta != 0, serial.beta != 0)
        np.testing.assert_allclose(beta, serial.beta, atol=5e-3)

    def test_identical_across_ranks(self, setup):
        from repro.core.parallel import distributed_cv_lasso

        file, _, name = setup
        res = run_spmd(
            3,
            lambda comm: distributed_cv_lasso(
                comm, file, name, n_lambdas=6, k=3, random_state=2
            ),
            machine=LAPTOP,
        )
        ref = res.values[0]
        for v in res.values[1:]:
            np.testing.assert_array_equal(v[0], ref[0])
            assert v[1] == ref[1]

    def test_1se_rule_sparser(self, setup):
        from repro.core.parallel import distributed_cv_lasso

        file, _, name = setup
        run = lambda rule: run_spmd(  # noqa: E731
            2,
            lambda comm: distributed_cv_lasso(
                comm, file, name, n_lambdas=10, k=4, rule=rule, random_state=9
            ),
            machine=LAPTOP,
        ).values[0]
        beta_min, lam_min, _ = run("min")
        beta_1se, lam_1se, _ = run("1se")
        assert lam_1se >= lam_min
        assert (beta_1se != 0).sum() <= (beta_min != 0).sum()

    def test_bad_rule(self, setup):
        from repro.core.parallel import distributed_cv_lasso

        file, _, name = setup

        def prog(comm):
            distributed_cv_lasso(comm, file, name, rule="magic")

        with pytest.raises(SpmdError, match="rule"):
            run_spmd(2, prog, machine=LAPTOP)


class TestDistributedUoIVarGrids:
    """Fig. 8's P_B x P_lambda parallelism, functionally."""

    @pytest.fixture(scope="class")
    def var_setup(self):
        sv = make_sparse_var(4, 60, rng=np.random.default_rng(17))
        vcfg = UoIVarConfig(
            order=1,
            lasso=UoILassoConfig(
                n_lambdas=6,
                n_selection_bootstraps=4,
                n_estimation_bootstraps=2,
                random_state=6,
            ),
        )
        base = run_spmd(
            4,
            lambda comm: distributed_uoi_var(
                comm, sv.series if comm.rank < 2 else None, vcfg, n_readers=2
            ),
            machine=LAPTOP,
        ).values[0]
        return sv, vcfg, base

    @pytest.mark.parametrize("pb,plam,world", [(2, 1, 4), (1, 2, 4), (2, 2, 8)])
    def test_grids_match_ungridded(self, var_setup, pb, plam, world):
        sv, vcfg, base = var_setup
        res = run_spmd(
            world,
            lambda comm: distributed_uoi_var(
                comm, sv.series if comm.rank == 0 else None, vcfg,
                n_readers=1, pb=pb, plam=plam,
            ),
            machine=LAPTOP,
        )
        out = res.values[0]
        np.testing.assert_array_equal(out.winners, base.winners)
        np.testing.assert_allclose(out.coef, base.coef, atol=2e-3)
        np.testing.assert_array_equal(out.supports, base.supports)

    def test_grid_all_ranks_agree(self, var_setup):
        sv, vcfg, _ = var_setup
        res = run_spmd(
            8,
            lambda comm: distributed_uoi_var(
                comm, sv.series if comm.rank == 0 else None, vcfg,
                n_readers=1, pb=2, plam=2,
            ),
            machine=LAPTOP,
        )
        ref = res.values[0].coef
        for v in res.values[1:]:
            np.testing.assert_array_equal(v.coef, ref)
