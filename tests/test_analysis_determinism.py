"""Tests for the DET determinism-taint pass (``repro.analysis.determinism``)."""

import os
import textwrap

from repro.analysis import determinism_check_paths, determinism_check_source

FIXTURE = os.path.join(
    os.path.dirname(__file__), "fixtures", "det_time_in_run_chain.py"
)

PLAN_HEADER = """\
class UoIPlan:
    pass


"""


def check(code: str):
    return determinism_check_source(
        PLAN_HEADER + textwrap.dedent(code), "prog.py"
    )


class TestWallClock:
    def test_time_in_run_chain_flagged(self):
        findings = check(
            """\
            import time

            class P(UoIPlan):
                def run_chain(self, stage, tasks, recovered, emit):
                    t0 = time.time()
                    return t0
            """
        )
        assert [f.rule for f in findings] == ["DET301"]
        assert "run_chain" in findings[0].message

    def test_perf_counter_in_reduce_flagged(self):
        findings = check(
            """\
            import time

            class P(UoIPlan):
                def reduce(self, stage, results):
                    return time.perf_counter()
            """
        )
        assert [f.rule for f in findings] == ["DET301"]

    def test_init_is_exempt(self):
        # The contract *requires* draws (and timing is harmless) in
        # __init__: only run_chain/reduce root the traversal.
        findings = check(
            """\
            import time

            class P(UoIPlan):
                def __init__(self):
                    self.t0 = time.time()
            """
        )
        assert findings == []

    def test_non_plan_class_untainted(self):
        findings = check(
            """\
            import time

            class Telemetry:
                def run_chain(self, stage, tasks, recovered, emit):
                    return time.time()
            """
        )
        assert findings == []


class TestOsOrdering:
    def test_listdir_flagged(self):
        findings = check(
            """\
            import os

            class P(UoIPlan):
                def run_chain(self, stage, tasks, recovered, emit):
                    return os.listdir(".")
            """
        )
        assert [f.rule for f in findings] == ["DET302"]

    def test_sorted_listdir_clean(self):
        findings = check(
            """\
            import os

            class P(UoIPlan):
                def run_chain(self, stage, tasks, recovered, emit):
                    return sorted(os.listdir("."))
            """
        )
        assert findings == []


class TestSetIteration:
    def test_local_set_iteration_flagged(self):
        findings = check(
            """\
            class P(UoIPlan):
                def run_chain(self, stage, tasks, recovered, emit):
                    keys = {t.key for t in tasks}
                    for key in keys:
                        emit(key, None)
            """
        )
        assert [f.rule for f in findings] == ["DET303"]

    def test_sorted_set_iteration_clean(self):
        findings = check(
            """\
            class P(UoIPlan):
                def run_chain(self, stage, tasks, recovered, emit):
                    keys = {t.key for t in tasks}
                    for key in sorted(keys):
                        emit(key, None)
            """
        )
        assert findings == []


class TestUnseededRng:
    def test_unseeded_default_rng_flagged(self):
        findings = check(
            """\
            import numpy as np

            class P(UoIPlan):
                def run_chain(self, stage, tasks, recovered, emit):
                    return np.random.default_rng().normal()
            """
        )
        assert [f.rule for f in findings] == ["DET304"]

    def test_seeded_default_rng_clean(self):
        findings = check(
            """\
            import numpy as np

            class P(UoIPlan):
                def run_chain(self, stage, tasks, recovered, emit):
                    return np.random.default_rng(7).normal()
            """
        )
        assert findings == []

    def test_stdlib_random_flagged(self):
        findings = check(
            """\
            import random

            class P(UoIPlan):
                def run_chain(self, stage, tasks, recovered, emit):
                    return random.shuffle(tasks)
            """
        )
        assert [f.rule for f in findings] == ["DET304"]


class TestReachability:
    def test_taint_crosses_helper_calls_with_path(self):
        findings = check(
            """\
            import time

            def helper():
                return time.time()

            class P(UoIPlan):
                def run_chain(self, stage, tasks, recovered, emit):
                    return self.solve()

                def solve(self):
                    return helper()
            """
        )
        assert [f.rule for f in findings] == ["DET301"]
        assert findings[0].context["path"] == [
            "P.run_chain",
            "P.solve",
            "helper",
        ]

    def test_unreachable_code_untainted(self):
        findings = check(
            """\
            import time

            def helper():
                return time.time()

            class P(UoIPlan):
                def run_chain(self, stage, tasks, recovered, emit):
                    return None
            """
        )
        assert findings == []

    def test_suppression(self):
        findings = check(
            """\
            import time

            class P(UoIPlan):
                def run_chain(self, stage, tasks, recovered, emit):
                    return time.time()  # repro: ignore[DET301]
            """
        )
        assert findings == []


class TestSeededFixture:
    def test_fixture_yields_exact_rules_and_lines(self):
        findings = determinism_check_paths([FIXTURE])
        assert [(f.rule, f.line) for f in findings] == [
            ("DET301", 27),
            ("DET302", 32),
            ("DET304", 33),
            ("DET303", 36),
        ]
        assert all(f.file == FIXTURE for f in findings)
        # The reachability path names how each source is reached.
        assert findings[0].context["path"] == ["TimedPlan.run_chain"]
        assert findings[1].context["path"] == [
            "TimedPlan.run_chain",
            "TimedPlan._solve",
        ]


class TestRepoGate:
    def test_installed_package_checks_clean(self):
        # The acceptance gate: nothing reachable from any shipped
        # plan's run_chain/reduce reads clocks, fs order, or entropy.
        assert determinism_check_paths() == []


class TestExclusionList:
    def test_excluded_subpackages_exactly(self):
        """The DET exclusion list is a reviewed contract — a new entry
        must update this test (and docs/static-analysis.md) with the
        rationale for why the package can never taint plan arithmetic."""
        from repro.analysis.determinism import EXCLUDED_SUBPACKAGES

        assert EXCLUDED_SUBPACKAGES == (
            "telemetry",
            "simmpi",
            "analysis",
            "perf",
            "service",
            # Coordinator + elastic transport: lease timing, straggler
            # percentiles and join/leave read the monotonic clock by
            # design, but payloads all come out of UoIPlan.run_chain
            # and replay through hooks in deterministic chain order —
            # no clock value reaches plan arithmetic.  The in-process
            # transports module deliberately stays scanned.
            "coordinator",
            "elastic",
            # Streaming ingest/refit: tick timestamps, buffer timeouts
            # and per-window wall-clock seconds are the subsystem's job;
            # window numerics all come from VarPlans (scanned), and
            # StreamConfig(verify=True) asserts them bitwise-equal to a
            # cold batch fit.  The pure-compute modules (window, diff)
            # are carved back in via SCANNED_EXCEPTIONS below.
            "stream",
        )

    def test_scanned_exceptions_exactly(self):
        """The carve-back list is a reviewed contract too: only the
        pure-compute stream modules (no sockets, no clocks, no thread
        scheduling) may be scanned from inside an excluded package."""
        from repro.analysis.determinism import SCANNED_EXCEPTIONS

        assert SCANNED_EXCEPTIONS == (
            # Incremental lag-window products: pure array arithmetic
            # feeding window fits directly.
            "repro.stream.window",
            # Network-diff arithmetic over fitted adjacency matrices.
            "repro.stream.diff",
        )

    def test_coordinator_and_elastic_modules_are_excluded(self):
        """The orchestration layer reads monotonic clocks (lease ages,
        speculation thresholds) by design; the taint pass must skip
        exactly those two modules while still scanning transports.py,
        which calls straight into plan code."""
        from repro.analysis.determinism import _excluded

        assert _excluded("repro.engine.coordinator")
        assert _excluded("repro.engine.elastic")
        assert not _excluded("repro.engine.transports")
        assert not _excluded("repro.engine.executors")
        assert not _excluded("repro.engine.plans")

    def test_engine_package_scan_is_clean(self):
        """Scanning the whole engine package (exclusions applied the
        way the CLI gate applies them) yields no DET findings — the
        clock reads all live in the excluded orchestration modules."""
        import glob
        import os

        from repro.analysis.determinism import _excluded, _module_name_for

        engine_dir = os.path.join(
            os.path.dirname(__file__), "..", "src", "repro", "engine"
        )
        paths = sorted(glob.glob(os.path.join(engine_dir, "*.py")))
        assert paths, "engine package not found"
        kept = [p for p in paths if not _excluded(_module_name_for(p))]
        assert any(p.endswith("transports.py") for p in kept)
        assert not any(p.endswith("coordinator.py") for p in kept)
        assert not any(p.endswith("elastic.py") for p in kept)
        assert determinism_check_paths(kept) == []

    def test_service_modules_are_excluded(self):
        """repro.service uses wall clocks, threads and sockets by design
        (job ordering, Lamport stamps); the taint pass must skip it."""
        import glob
        import os

        service_dir = os.path.join(
            os.path.dirname(__file__), "..", "src", "repro", "service"
        )
        paths = sorted(glob.glob(os.path.join(service_dir, "*.py")))
        assert paths, "service package not found"
        assert determinism_check_paths(paths) == []

    def test_stream_modules_are_excluded(self):
        """repro.stream reads clocks and sockets by design (ingestion
        timestamps, cadence pacing); its window numerics come from
        VarPlans, which the pass scans via the engine package.  The
        two pure-compute modules are carved back into the scan."""
        from repro.analysis.determinism import _excluded

        assert _excluded("repro.stream.ingest")
        assert _excluded("repro.stream.refit")
        assert not _excluded("repro.stream.window")
        assert not _excluded("repro.stream.diff")
        assert not _excluded("repro.engine.plans")

    def test_stream_pure_modules_scan_clean(self):
        """The carved-back stream modules pass the taint scan with zero
        findings and zero suppressions — they are pure computation."""
        import os

        stream_dir = os.path.join(
            os.path.dirname(__file__), "..", "src", "repro", "stream"
        )
        paths = [
            os.path.join(stream_dir, "window.py"),
            os.path.join(stream_dir, "diff.py"),
        ]
        for path in paths:
            assert os.path.exists(path), path
            with open(path, "r", encoding="utf-8") as fh:
                assert "repro: ignore" not in fh.read()
        assert determinism_check_paths(paths) == []

    def test_default_paths_skip_excluded_packages(self):
        from repro.analysis.determinism import (
            EXCLUDED_SUBPACKAGES,
            default_determinism_paths,
        )

        sep = os.sep
        for path in default_determinism_paths():
            for sub in EXCLUDED_SUBPACKAGES:
                assert f"{sep}{sub}{sep}" not in path
