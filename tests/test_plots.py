"""Tests for the text-mode breakdown charts."""

import pytest

from repro.perf import BreakdownRow, log_lines, stacked_bars
from repro.perf.plots import CATEGORY_GLYPHS


@pytest.fixture
def rows():
    return [
        BreakdownRow("small", {"computation": 8.0, "communication": 2.0}),
        BreakdownRow(
            "large",
            {"computation": 10.0, "communication": 5.0, "distribution": 5.0},
        ),
    ]


class TestStackedBars:
    def test_contains_labels_and_totals(self, rows):
        out = stacked_bars(rows, title="T")
        assert out.startswith("T\n")
        assert "small" in out and "large" in out
        assert "10s" in out and "20s" in out

    def test_bar_lengths_proportional(self, rows):
        out = stacked_bars(rows, width=40)
        small_line = next(l for l in out.splitlines() if l.startswith("small"))
        large_line = next(l for l in out.splitlines() if l.startswith("large"))
        small_bar = small_line.split("|")[1].strip()
        large_bar = large_line.split("|")[1].strip()
        assert len(large_bar) == 40
        assert len(small_bar) == pytest.approx(20, abs=1)

    def test_glyph_shares(self, rows):
        out = stacked_bars([rows[0]], width=50)
        bar = out.splitlines()[-1].split("|")[1]
        # 80% compute / 20% comm of a 50-char bar.
        assert bar.count("C") == pytest.approx(40, abs=1)
        assert bar.count("M") == pytest.approx(10, abs=1)

    def test_all_categories_have_glyphs(self):
        assert set(CATEGORY_GLYPHS) == {
            "computation",
            "communication",
            "distribution",
            "data_io",
        }
        assert len(set(CATEGORY_GLYPHS.values())) == 4

    def test_validation(self, rows):
        with pytest.raises(ValueError):
            stacked_bars([])
        with pytest.raises(ValueError):
            stacked_bars(rows, width=5)
        with pytest.raises(ValueError):
            stacked_bars([BreakdownRow("z", {})])


class TestLogLines:
    def test_markers_present_per_category(self, rows):
        out = log_lines(rows)
        large_line = next(l for l in out.splitlines() if "large" in l)
        assert "C" in large_line and "M" in large_line and "D" in large_line

    def test_log_positions_ordered(self):
        row = BreakdownRow(
            "r", {"computation": 1000.0, "communication": 10.0, "data_io": 0.1}
        )
        out = log_lines([row], width=50)
        line = next(l for l in out.splitlines() if l.startswith("r |"))
        bar = line.split("|")[1]
        assert bar.index("I") < bar.index("M") < bar.index("C")

    def test_zero_categories_skipped(self):
        row = BreakdownRow("r", {"computation": 5.0})
        out = log_lines([row])
        line = next(l for l in out.splitlines() if l.startswith("r |"))
        assert "M" not in line.split("|")[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            log_lines([])
        with pytest.raises(ValueError):
            log_lines([BreakdownRow("z", {"computation": 0.0})])
        with pytest.raises(ValueError):
            log_lines([BreakdownRow("z", {"computation": 1.0})], width=3)
