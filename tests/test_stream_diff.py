"""Network-change diagnostics: edge sets, diffs, JSONL event log."""

import numpy as np
import pytest

from repro.stream import DiffLog, diff_networks, edge_set
from repro.stream.diff import read_events, record_diff
from repro.telemetry import Recorder, use_recorder


def _vec(coefs, mu=None):
    """vec B for given lag matrices (+ optional intercept), paper layout."""
    blocks = ([mu.reshape(1, -1)] if mu is not None else []) + [
        A.T for A in coefs
    ]
    return np.vstack(blocks).flatten(order="F")


class TestEdgeSet:
    def test_recovers_nonzeros_per_lag(self):
        A1 = np.zeros((3, 3))
        A1[0, 1] = 0.5
        A2 = np.zeros((3, 3))
        A2[2, 0] = -0.2
        edges = edge_set(_vec([A1, A2]), 3, 2)
        assert edges == {(1, 0, 1), (2, 2, 0)}

    def test_tol_filters_small_weights(self):
        A = np.array([[0.0, 0.05], [0.5, 0.0]])
        assert edge_set(_vec([A]), 2, 1, tol=0.1) == {(1, 1, 0)}

    def test_intercept_rows_ignored(self):
        A = np.eye(2)
        vec = _vec([A], mu=np.array([9.0, 9.0]))
        assert edge_set(vec, 2, 1, has_intercept=True) == {(1, 0, 0), (1, 1, 1)}


class TestDiffNetworks:
    def test_gained_lost_drift_stability(self):
        A_prev = np.zeros((2, 2))
        A_prev[0, 0] = 1.0
        A_prev[0, 1] = 0.5
        A_cur = np.zeros((2, 2))
        A_cur[0, 0] = 1.0
        A_cur[1, 0] = -0.5
        d = diff_networks(_vec([A_prev]), _vec([A_cur]), 2, 1)
        assert d.gained == [(1, 1, 0)]
        assert d.lost == [(1, 0, 1)]
        assert d.n_edges_prev == 2 and d.n_edges_cur == 2
        assert d.stability == pytest.approx(1 / 3)
        assert d.drift == pytest.approx(np.sqrt(0.5))

    def test_identical_networks_are_fully_stable(self):
        v = _vec([np.eye(3)])
        d = diff_networks(v, v, 3, 1)
        assert d.stability == 1.0 and d.drift == 0.0
        assert not d.gained and not d.lost

    def test_empty_networks_are_stable_by_convention(self):
        z = np.zeros(4)
        assert diff_networks(z, z, 2, 1).stability == 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shapes differ"):
            diff_networks(np.zeros(4), np.zeros(9), 2, 1)


class TestTelemetry:
    def test_record_diff_mirrors_counters_and_gauges(self):
        rec = Recorder()
        with use_recorder(rec):
            d = diff_networks(
                _vec([np.eye(2)]), _vec([np.zeros((2, 2))]), 2, 1
            )
            record_diff(d)
        counters = rec.counter_values()
        gauges = rec.gauge_values()
        assert counters["stream.edges_lost"] == 2
        assert counters["stream.edges_gained"] == 0
        assert gauges["stream.stability"] == 0.0
        assert gauges["stream.edges"] == 0


class TestDiffLog:
    def test_round_trip_events(self, tmp_path):
        path = tmp_path / "stream" / "events.jsonl"
        d = diff_networks(_vec([np.zeros((2, 2))]), _vec([np.eye(2)]), 2, 1)
        with DiffLog(path) as log:
            log.emit(0, None, edges=edge_set(_vec([np.zeros((2, 2))]), 2, 1))
            log.emit(1, d, edges=edge_set(_vec([np.eye(2)]), 2, 1), t_end=40)
        events = read_events(path)
        assert [e["window"] for e in events] == [0, 1]
        assert events[0]["edges"] == []
        assert events[1]["gained"] == [[1, 0, 0], [1, 1, 1]]
        assert events[1]["stability"] == 0.0
        assert events[1]["t_end"] == 40

    def test_appends_across_instances(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with DiffLog(path) as log:
            log.emit(0, None)
        with DiffLog(path) as log:
            log.emit(1, None)
        assert [e["window"] for e in read_events(path)] == [0, 1]
