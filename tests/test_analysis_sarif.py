"""Tests for SARIF 2.1.0 export (``repro.analysis.sarif``)."""

import json

from repro.analysis import Finding, findings_to_sarif, lint_source
from repro.analysis.sarif import SARIF_VERSION


def _sarif(findings):
    return json.loads(findings_to_sarif(findings))


def _lint_findings():
    return lint_source(
        "def prog(comm):\n"
        "    if comm.rank == 0:\n"
        "        comm.allreduce(1.0)\n",
        "prog.py",
    )


class TestDocumentShape:
    def test_version_and_schema(self):
        doc = _sarif([])
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(doc["runs"]) == 1

    def test_empty_findings_valid_clean_run(self):
        doc = _sarif([])
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-check"
        assert run["tool"]["driver"]["rules"] == []
        assert run["results"] == []

    def test_result_carries_rule_location_and_level(self):
        doc = _sarif(_lint_findings())
        run = doc["runs"][0]
        (result,) = run["results"]
        assert result["ruleId"] == "SPMD001"
        assert result["level"] == "error"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "prog.py"
        assert loc["region"]["startLine"] == 3

    def test_rules_array_lists_referenced_rules_only(self):
        doc = _sarif(_lint_findings())
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == ["SPMD001"]
        assert rules[0]["shortDescription"]["text"]
        assert rules[0]["fullDescription"]["text"]
        assert rules[0]["defaultConfiguration"]["level"] == "error"
        # ruleIndex points back into the (referenced-only) rules array.
        assert doc["runs"][0]["results"][0]["ruleIndex"] == 0


class TestLevelAndRegionMapping:
    def _finding(self, rule, severity, line):
        return Finding(
            rule=rule,
            severity=severity,
            message="m",
            file="f.py",
            line=line,
            source="lint",
            context={},
        )

    def test_severity_levels_map_to_sarif(self):
        doc = _sarif(
            [
                self._finding("SPMD001", "error", 1),
                self._finding("SPMD003", "warning", 2),
                self._finding("SPMD004", "info", 3),
            ]
        )
        levels = [r["level"] for r in doc["runs"][0]["results"]]
        assert levels == ["error", "warning", "note"]

    def test_line_zero_omits_region(self):
        # Plan findings have no source position; SARIF regions must
        # start at line >= 1, so the region is omitted entirely.
        doc = _sarif([self._finding("PLAN401", "error", 0)])
        loc = doc["runs"][0]["results"][0]["locations"][0]
        assert "region" not in loc["physicalLocation"]

    def test_context_exported_as_properties(self):
        f = Finding(
            rule="SPMD001",
            severity="error",
            message="m",
            file="f.py",
            line=3,
            source="lint",
            context={"receiver": "comm"},
        )
        doc = _sarif([f])
        props = doc["runs"][0]["results"][0]["properties"]
        assert props["context"] == {"receiver": "comm"}

    def test_results_sorted_by_location(self):
        doc = _sarif(
            [
                self._finding("SPMD002", "error", 9),
                self._finding("SPMD001", "error", 2),
            ]
        )
        lines = [
            r["locations"][0]["physicalLocation"]["region"]["startLine"]
            for r in doc["runs"][0]["results"]
        ]
        assert lines == [2, 9]
