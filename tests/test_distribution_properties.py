"""Property-based tests of the distribution strategies.

Hypothesis drives random dataset shapes, rank counts and bootstrap
index vectors through both distributors and the distributed-Kronecker
assembly, asserting exact delivery every time.  Runs on small worlds
(threads), so shapes are kept modest.
"""

import numpy as np
import scipy.sparse
from hypothesis import given, settings, strategies as st

from repro.distribution import (
    ConventionalDistributor,
    DistributedKron,
    RandomizedDistributor,
)
from repro.linalg.kron import identity_kron, vec
from repro.pfs import SimH5File
from repro.simmpi import LAPTOP, run_spmd


@settings(max_examples=15, deadline=None)
@given(
    n_rows=st.integers(8, 40),
    n_cols=st.integers(1, 6),
    nranks=st.integers(1, 6),
    boot_size=st.integers(1, 60),
    seed=st.integers(0, 1000),
)
def test_randomized_distributor_delivers_any_subsample(
    n_rows, n_cols, nranks, boot_size, seed
):
    nranks = min(nranks, n_rows)
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n_rows, n_cols))
    file = SimH5File("/prop.h5")
    file.create_dataset("d", data)
    boot = rng.integers(0, n_rows, size=boot_size)

    def prog(comm):
        d = RandomizedDistributor(comm, file, "d")
        out = d.sample(boot)
        d.close()
        return out

    res = run_spmd(nranks, prog, machine=LAPTOP)
    got = np.concatenate(res.values) if nranks > 1 else res.values[0]
    np.testing.assert_array_equal(got, data[boot])


@settings(max_examples=10, deadline=None)
@given(
    n_rows=st.integers(8, 30),
    nranks=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
def test_conventional_distributor_matches_randomized(n_rows, nranks, seed):
    nranks = min(nranks, n_rows)
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n_rows, 3))
    file = SimH5File("/prop2.h5")
    file.create_dataset("d", data)
    boot = rng.integers(0, n_rows, size=n_rows)

    def prog(comm):
        r = RandomizedDistributor(comm, file, "d")
        a = r.sample(boot)
        r.close()
        b = ConventionalDistributor(comm, file, "d", rows_per_chunk=5).sample(boot)
        return a, b

    res = run_spmd(nranks, prog, machine=LAPTOP)
    for a, b in res.values:
        np.testing.assert_array_equal(a, b)


@settings(max_examples=12, deadline=None)
@given(
    m=st.integers(2, 16),
    k=st.integers(1, 4),
    p=st.integers(1, 5),
    nranks=st.integers(1, 5),
    n_readers=st.integers(1, 3),
    seed=st.integers(0, 1000),
)
def test_distributed_kron_assembles_any_shape(m, k, p, nranks, n_readers, seed):
    n_readers = min(n_readers, nranks, m)
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((m, k))
    Y = rng.standard_normal((m, p))

    def prog(comm):
        dk = DistributedKron(
            comm,
            X if comm.rank < n_readers else None,
            Y if comm.rank < n_readers else None,
            n_readers=n_readers,
        )
        A, b, bounds = dk.build_local()
        dk.close()
        return A, b, bounds

    res = run_spmd(nranks, prog, machine=LAPTOP)
    A_full = scipy.sparse.vstack([v[0] for v in res.values]).toarray()
    b_full = np.concatenate([v[1] for v in res.values])
    np.testing.assert_allclose(A_full, identity_kron(X, p, sparse=False))
    np.testing.assert_allclose(b_full, vec(Y))
    # Bounds tile [0, m*p) in rank order.
    cursor = 0
    for lo, hi in (v[2] for v in res.values):
        assert lo == cursor
        cursor = hi
    assert cursor == m * p
