"""Elastic backend: socket workers, join/leave, speculation, drains.

The acceptance bar from the coordinator refactor: an elastic run with
a worker killed mid-run and a 10x injected straggler must produce
coefficients bitwise identical to an uninterrupted serial run, and the
scheduler must stay fair across tenants while the fleet is scaled up
and drained under it.
"""

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core import UoILasso, UoILassoConfig
from repro.datasets import make_sparse_regression
from repro.engine import SerialExecutor, default_executor, make_executor
from repro.engine.coordinator import SpeculationPolicy
from repro.engine.elastic import (
    ElasticExecutor,
    WorkerHub,
    inspect_hub,
    reset_shared_executor,
    shared_elastic_executor,
)
from repro.resilience.faults import FaultPlan
from repro.wire import LineChannel

LASSO_CFG = UoILassoConfig(
    n_lambdas=5,
    n_selection_bootstraps=3,
    n_estimation_bootstraps=2,
    random_state=12,
)


@pytest.fixture(scope="module")
def lasso_data():
    return make_sparse_regression(
        80, 9, n_informative=3, snr=12.0, rng=np.random.default_rng(31)
    )


@pytest.fixture(scope="module")
def serial_coef(lasso_data):
    model = UoILasso(LASSO_CFG).fit(
        lasso_data.X, lasso_data.y, executor=SerialExecutor()
    )
    return model.coef_


def _elastic_fit(lasso_data, executor):
    try:
        return UoILasso(LASSO_CFG).fit(
            lasso_data.X, lasso_data.y, executor=executor
        ).coef_
    finally:
        executor.shutdown()


# ---------------------------------------------------------------------------
# bitwise identity, clean and faulted
# ---------------------------------------------------------------------------
class TestBitwiseIdentity:
    def test_clean_run_identical_to_serial(self, lasso_data, serial_coef):
        coef = _elastic_fit(lasso_data, ElasticExecutor(workers=2))
        assert np.array_equal(coef, serial_coef)

    def test_kill_plus_10x_straggler_identical(self, lasso_data, serial_coef):
        """The headline fault drill: worker 1 dies on its second chain,
        worker 0 sleeps ~10x a chain's compute per chain; speculation
        and lease reassignment must hide both without changing a bit."""
        faults = FaultPlan().crash(1, at_collective=2).delay(0, seconds=0.5)
        executor = ElasticExecutor(
            workers=3,
            faults=faults,
            speculation=SpeculationPolicy(
                percentile=90.0, factor=2.0, min_seconds=0.05, min_samples=2
            ),
        )
        coef = _elastic_fit(lasso_data, executor)
        assert np.array_equal(coef, serial_coef)
        stats = executor.utilization()
        assert stats["joins"] == 3
        assert stats["leaves"] >= 1
        # The straggler or the dead worker forced duplicate/reissued
        # leases beyond the one-per-chain minimum.
        assert stats["speculative"] + stats["reassigned"] >= 1

    def test_crash_recovers_by_reassignment_without_speculation(
        self, lasso_data, serial_coef
    ):
        faults = FaultPlan().crash(1, at_collective=1)
        executor = ElasticExecutor(
            workers=2,
            faults=faults,
            speculation=SpeculationPolicy(enabled=False),
        )
        coef = _elastic_fit(lasso_data, executor)
        assert np.array_equal(coef, serial_coef)
        stats = executor.utilization()
        assert stats["leaves"] >= 1
        assert stats["reassigned"] >= 1
        assert stats["speculative"] == 0


# ---------------------------------------------------------------------------
# mid-run elasticity
# ---------------------------------------------------------------------------
class TestMidRunJoin:
    def test_workers_attach_mid_run(self, lasso_data, serial_coef):
        """The run starts with an empty fleet; two workers join while
        the first stage is already open and pick up the queued chains
        (the rank-join handshake ships them the current stage frame)."""
        executor = ElasticExecutor(workers=0)

        def attach():
            executor.spawn_worker(0)
            executor.spawn_worker(1)

        timer = threading.Timer(0.4, attach)
        timer.start()
        try:
            coef = _elastic_fit(lasso_data, executor)
        finally:
            timer.cancel()
        assert np.array_equal(coef, serial_coef)
        assert executor.utilization()["joins"] == 2


# ---------------------------------------------------------------------------
# worker-side telemetry ships home on the done frame
# ---------------------------------------------------------------------------
class TestWorkerTelemetry:
    def test_solver_counters_cross_the_wire(self, lasso_data):
        from repro.engine import run_plan
        from repro.engine.plans import LassoPlan
        from repro.telemetry.recorder import Recorder, use_recorder

        recorder = Recorder()
        executor = ElasticExecutor(workers=2)
        try:
            with use_recorder(recorder):
                run_plan(
                    LassoPlan(LASSO_CFG, lasso_data.X, lasso_data.y),
                    executor,
                )
        finally:
            executor.shutdown()
        serial = Recorder()
        with use_recorder(serial):
            run_plan(
                LassoPlan(LASSO_CFG, lasso_data.X, lasso_data.y),
                SerialExecutor(),
            )
        admm = {
            name: value
            for name, value in recorder.counter_values().items()
            if name.startswith("admm.")
        }
        assert admm["admm.solves"] > 0
        assert admm == {
            name: value
            for name, value in serial.counter_values().items()
            if name.startswith("admm.")
        }


# ---------------------------------------------------------------------------
# hub protocol
# ---------------------------------------------------------------------------
class TestWorkerHub:
    def test_join_handshake_and_name_uniquify(self):
        hub = WorkerHub()
        chans = []
        try:
            for _ in range(2):
                chan = LineChannel(
                    socket.create_connection((hub.host, hub.port))
                )
                chan.send({"op": "join", "worker": "dup"})
                chans.append(chan)
            names = [chan.recv()["worker"] for chan in chans]
            assert names == ["dup", "dup+"]
            deadline = time.monotonic() + 5.0
            while hub.workers() != ["dup", "dup+"]:
                assert time.monotonic() < deadline
                time.sleep(0.01)
        finally:
            for chan in chans:
                chan.close()
            hub.close()

    def test_disconnect_posts_leave_event(self):
        hub = WorkerHub()
        try:
            chan = LineChannel(socket.create_connection((hub.host, hub.port)))
            chan.send({"op": "join", "worker": "w"})
            assert chan.recv()["op"] == "welcome"
            assert hub.events.get(timeout=5.0)[0] == "join"
            chan.close()
            kind, worker, _ = hub.events.get(timeout=5.0)
            assert (kind, worker) == ("leave", "w")
            assert hub.workers() == []
        finally:
            hub.close()

    def test_inspect_reports_fleet_status(self):
        executor = ElasticExecutor(workers=1)
        try:
            executor.ensure_fleet()
            status = inspect_hub(executor.hub.host, executor.hub.port)
            assert status["ok"] is True
            assert status["workers"] == ["ew0"]
            assert status["joined_total"] == 1
            assert status["stage_loaded"] is False
        finally:
            executor.shutdown()

    def test_unknown_op_is_rejected(self):
        hub = WorkerHub()
        try:
            chan = LineChannel(socket.create_connection((hub.host, hub.port)))
            chan.send({"op": "launder"})
            reply = chan.recv()
            chan.close()
            assert reply["ok"] is False
        finally:
            hub.close()


# ---------------------------------------------------------------------------
# registry + shared fleet
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_alias_resolves_to_elastic(self):
        executor = make_executor("processpool-elastic", workers=0, spawn=False)
        try:
            assert isinstance(executor, ElasticExecutor)
            assert executor.name == "elastic"
        finally:
            executor.shutdown()

    def test_default_executor_uses_shared_fleet(self, monkeypatch):
        reset_shared_executor()
        monkeypatch.setenv("REPRO_ENGINE_BACKEND", "elastic")
        monkeypatch.setenv("REPRO_ELASTIC_WORKERS", "1")
        try:
            first = default_executor()
            assert isinstance(first, ElasticExecutor)
            assert first is default_executor()
            assert first is shared_elastic_executor()
            assert first.n_workers == 1
        finally:
            reset_shared_executor()


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
class TestCli:
    def test_workers_inspect(self, capsys):
        executor = ElasticExecutor(workers=1)
        try:
            executor.ensure_fleet()
            rc = cli_main(
                [
                    "workers",
                    "inspect",
                    "--host",
                    executor.hub.host,
                    "--port",
                    str(executor.hub.port),
                ]
            )
            status = json.loads(capsys.readouterr().out)
        finally:
            executor.shutdown()
        assert rc == 0
        assert status["workers"] == ["ew0"]

    def test_engine_backend_check(self, capsys):
        rc = cli_main(["engine", "--kind", "lasso", "--backend", "serial"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "backend serial: bitwise identical to serial = True" in out


# ---------------------------------------------------------------------------
# satellite: scheduler fair share while the fleet drains 2 -> 4 -> 1
# ---------------------------------------------------------------------------
class TestSchedulerFairShareUnderDrain:
    def test_four_tenants_mixed_sizes_fleet_2_4_1(self):
        from tests.test_service import GatedPlan, make_stub_job

        from repro.service import DONE, Job, JobSpec, Scheduler

        fit_cfg = UoILassoConfig(
            n_lambdas=4,
            n_selection_bootstraps=3,
            n_estimation_bootstraps=2,
            max_iter=120,
            random_state=3,
        )
        # Mixed job sizes: each tenant brings a different problem shape.
        problems = {}
        for i, tenant in enumerate(["t1", "t2", "t3", "t4"]):
            rng = np.random.default_rng(40 + i)
            X = rng.normal(size=(40 + 8 * i, 6 + i))
            beta = np.zeros(6 + i)
            beta[:2] = (1.2, -0.8)
            problems[tenant] = {
                "X": X, "y": X @ beta + 0.1 * rng.normal(size=40 + 8 * i)
            }
        references = {
            tenant: UoILasso(fit_cfg)
            .fit(data["X"], data["y"], executor=SerialExecutor())
            .coef_
            for tenant, data in problems.items()
        }

        # Every worker sleeps a beat per chain so the 8-job queue is
        # still flowing when the fleet scales out and drains (otherwise
        # tiny fits finish before the late joiners boot).
        pacing = FaultPlan()
        for rank in range(4):
            pacing.delay(rank, seconds=0.25)
        fleet = ElasticExecutor(workers=2, faults=pacing)
        sched = Scheduler(
            workers=1,
            batching=False,
            # The gate stub stays in-process; real jobs share the fleet.
            executor_factory=lambda backend: (
                fleet if backend == "elastic" else make_executor(backend)
            ),
        )
        hold = make_stub_job("hold", 1, tenant="holder")
        jobs = []
        try:
            # Gate the single scheduler worker so the whole mixed queue
            # is present before fair-share ordering starts.
            sched.submit(hold)
            assert hold.plan.started.wait(10.0)
            seq = 2
            for tenant in ["t1", "t1", "t2", "t2", "t3", "t3", "t4", "t4"]:
                spec = JobSpec(
                    kind="lasso",
                    data=problems[tenant],
                    config=fit_cfg,
                    backend="elastic",
                    tenant=tenant,
                )
                job = Job(
                    id=f"{tenant}-{seq}",
                    spec=spec,
                    plan=spec.build_plan(),
                    seq=seq,
                )
                jobs.append(job)
                sched.submit(job)
                seq += 1
            hold.plan.release.set()

            # Scale out 2 -> 4 while the queue is running...
            deadline = time.monotonic() + 60.0
            while len(fleet.hub.workers()) < 2:
                assert time.monotonic() < deadline, "fleet never assembled"
                time.sleep(0.02)
            fleet.spawn_worker(2)
            fleet.spawn_worker(3)
            while len(fleet.hub.workers()) < 4:
                assert time.monotonic() < deadline, "scale-out never landed"
                time.sleep(0.02)
            # ...then drain 4 -> 1 (kills land mid-run; lost leases are
            # reassigned, partial chains completed from streamed tasks).
            for proc in fleet._procs[:3]:
                proc.terminate()

            for job in jobs:
                assert job.done_event.wait(180.0), f"{job.id} never finished"
                assert job.state == DONE, f"{job.id}: {job.error}"
        finally:
            hold.plan.release.set()
            sched.shutdown()
            stats = fleet.utilization()
            survivors = fleet.hub.workers()
            fleet.shutdown()

        # Fair share: with every tenant at zero starts, the first four
        # claims rotate through all four tenants (submit order would
        # have run t1 twice first); the single scheduler worker makes
        # the claim order deterministic.
        started = sorted(
            (job.started_at, job.spec.tenant) for job in jobs
        )
        assert [tenant for _, tenant in started] == [
            "t1", "t2", "t3", "t4", "t1", "t2", "t3", "t4",
        ]
        # The drain really happened and every result is still exact.
        assert stats["joins"] >= 4
        assert stats["leaves"] >= 3
        assert survivors == ["ew3"]
        for job in jobs:
            assert np.array_equal(
                job.result.coef, references[job.spec.tenant]
            ), f"{job.id} diverged"
