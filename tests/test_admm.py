"""Tests for the serial LASSO-ADMM solver."""

import numpy as np
import pytest

from repro.linalg import LassoADMM, lasso_admm, lasso_cd


@pytest.fixture
def problem():
    rng = np.random.default_rng(0)
    n, p = 80, 12
    X = rng.standard_normal((n, p))
    beta = np.zeros(p)
    beta[[1, 4, 8]] = [2.0, -3.0, 1.5]
    y = X @ beta + 0.1 * rng.standard_normal(n)
    return X, y, beta


class TestLassoADMM:
    def test_matches_coordinate_descent(self, problem):
        X, y, _ = problem
        lam = 4.0
        a = LassoADMM(X, y).solve(lam).beta
        c = lasso_cd(X, y, lam)
        np.testing.assert_allclose(a, c, atol=1e-3)

    def test_lam_zero_gives_ols(self, problem):
        X, y, _ = problem
        ols = np.linalg.lstsq(X, y, rcond=None)[0]
        res = LassoADMM(X, y).solve(0.0)
        np.testing.assert_allclose(res.beta, ols, atol=1e-4)

    def test_recovers_planted_support(self, problem):
        X, y, beta = problem
        res = LassoADMM(X, y).solve(5.0)
        assert set(np.flatnonzero(res.beta)) == set(np.flatnonzero(beta))

    def test_result_is_exactly_sparse(self, problem):
        X, y, _ = problem
        res = LassoADMM(X, y).solve(20.0)
        # Soft-threshold output has exact zeros, not tiny values.
        small = res.beta[np.abs(res.beta) < 1e-10]
        assert np.all(small == 0.0)

    def test_huge_lambda_gives_zero(self, problem):
        X, y, _ = problem
        lam = 10.0 * 2.0 * np.max(np.abs(X.T @ y))
        res = LassoADMM(X, y).solve(lam)
        np.testing.assert_array_equal(res.beta, np.zeros(X.shape[1]))

    def test_converged_flag_and_residuals(self, problem):
        X, y, _ = problem
        res = LassoADMM(X, y, max_iter=5000).solve(4.0)
        assert res.converged
        assert res.primal_residual < 1e-2
        assert res.iterations >= 1

    def test_objective_reported(self, problem):
        X, y, _ = problem
        solver = LassoADMM(X, y)
        res = solver.solve(4.0)
        assert res.objective == pytest.approx(solver.objective(res.beta, 4.0))

    def test_warm_start_converges_faster(self, problem):
        X, y, _ = problem
        solver = LassoADMM(X, y)
        cold = solver.solve(4.0)
        warm = solver.solve(4.0, beta0=cold.beta)
        assert warm.iterations <= cold.iterations
        np.testing.assert_allclose(warm.beta, cold.beta, atol=1e-3)

    def test_solve_path_decreasing_sparsity(self, problem):
        X, y, _ = problem
        lmax = 2.0 * np.max(np.abs(X.T @ y))
        lams = lmax * np.logspace(0, -3, 8)
        results = LassoADMM(X, y).solve_path(lams)
        nnz = [int((r.beta != 0).sum()) for r in results]
        assert nnz[0] <= 1  # at lambda_max everything is (near) zero
        assert nnz[-1] >= nnz[0]

    def test_record_history(self, problem):
        X, y, _ = problem
        res = LassoADMM(X, y).solve(4.0, record_history=True)
        assert len(res.history) == res.iterations
        # Residuals should broadly decrease.
        assert res.history[-1][0] < res.history[0][0]

    def test_history_records_objective_triples(self, problem):
        """Regression: history carries (primal, dual, objective) triples."""
        X, y, _ = problem
        solver = LassoADMM(X, y)
        res = solver.solve(4.0, record_history=True)
        assert all(len(entry) == 3 for entry in res.history)
        # The recorded objective is the paper-eq.-(2) value, so the
        # final entry must match the result's own objective field.
        assert res.history[-1][2] == pytest.approx(res.objective)
        # ADMM is not monotone per-iteration, but the objective must
        # broadly decrease from the zero/warm start to the solution.
        assert res.history[-1][2] < res.history[0][2]
        # Every recorded value is a finite float.
        for r_norm, s_norm, obj in res.history:
            assert np.isfinite(r_norm) and np.isfinite(s_norm)
            assert np.isfinite(obj)

    def test_history_empty_list_when_recording_off(self, problem):
        """history is an empty list — never None — when recording is off."""
        X, y, _ = problem
        res = LassoADMM(X, y).solve(4.0)
        assert res.history == []
        assert res.history is not None
        # Callers can iterate unconditionally.
        assert [e for e in res.history] == []

    def test_woodbury_path_matches_cholesky(self):
        """p > n triggers the matrix-inversion-lemma factorization."""
        rng = np.random.default_rng(3)
        n, p = 20, 50
        X = rng.standard_normal((n, p))
        y = rng.standard_normal(n)
        lam = 2.0
        wood = LassoADMM(X, y).solve(lam).beta
        cd = lasso_cd(X, y, lam, max_iter=5000)
        np.testing.assert_allclose(wood, cd, atol=2e-3)

    def test_functional_wrapper(self, problem):
        X, y, _ = problem
        np.testing.assert_allclose(
            lasso_admm(X, y, 4.0), LassoADMM(X, y).solve(4.0).beta
        )


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="incompatible"):
            LassoADMM(np.ones((5, 2)), np.ones(4))

    def test_one_dim_X(self):
        with pytest.raises(ValueError, match="2-D"):
            LassoADMM(np.ones(5), np.ones(5))

    def test_bad_rho(self):
        with pytest.raises(ValueError, match="rho"):
            LassoADMM(np.ones((5, 2)), np.ones(5), rho=0.0)

    def test_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            LassoADMM(np.ones((5, 2)), np.ones(5), alpha=2.5)

    def test_negative_lambda(self):
        with pytest.raises(ValueError, match="lam"):
            LassoADMM(np.ones((5, 2)), np.ones(5)).solve(-1.0)

    def test_bad_warm_start_shape(self):
        solver = LassoADMM(np.ones((5, 2)), np.ones(5))
        with pytest.raises(ValueError, match="beta0"):
            solver.solve(1.0, beta0=np.zeros(3))


class TestAdaptiveRho:
    def test_fewer_iterations_same_answer(self, problem):
        X, y, _ = problem
        fixed = LassoADMM(X, y, max_iter=5000).solve(8.0)
        solver = LassoADMM(X, y, max_iter=5000, adapt_rho=True)
        adaptive = solver.solve(8.0)
        assert adaptive.iterations < fixed.iterations
        np.testing.assert_allclose(adaptive.beta, fixed.beta, atol=1e-3)

    def test_refactorization_count_tracked(self, problem):
        X, y, _ = problem
        solver = LassoADMM(X, y, adapt_rho=True)
        assert solver.factorizations == 1  # constructor's initial factor
        solver.solve(8.0)
        assert solver.factorizations > 1

    def test_fixed_rho_never_refactors(self, problem):
        X, y, _ = problem
        solver = LassoADMM(X, y)
        solver.solve(4.0)
        solver.solve(8.0)
        assert solver.factorizations == 1

    def test_adaptive_woodbury_path(self):
        rng = np.random.default_rng(9)
        X = rng.standard_normal((20, 40))
        y = rng.standard_normal(20)
        adaptive = LassoADMM(X, y, adapt_rho=True, max_iter=3000).solve(2.0)
        cd = lasso_cd(X, y, 2.0, max_iter=8000)
        np.testing.assert_allclose(adaptive.beta, cd, atol=1e-3)

    def test_adapt_param_validation(self, problem):
        X, y, _ = problem
        with pytest.raises(ValueError, match="adapt"):
            LassoADMM(X, y, adapt_tau=1.0)
        with pytest.raises(ValueError, match="adapt"):
            LassoADMM(X, y, adapt_mu=0.5)
