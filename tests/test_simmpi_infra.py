"""Tests for the SPMD executor, clocks, timing models and machine models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simmpi import (
    CORI_KNL,
    LAPTOP,
    RankClock,
    SpmdError,
    TimeCategory,
    run_spmd,
    timing,
)
from repro.simmpi.clock import merge_breakdowns


class TestExecutor:
    def test_returns_rank_ordered_values(self):
        res = run_spmd(5, lambda comm: comm.rank * 2)
        assert res.values == [0, 2, 4, 6, 8]

    def test_args_and_kwargs_forwarded(self):
        res = run_spmd(2, lambda comm, a, b=0: a + b + comm.rank, 10, b=5)
        assert res.values == [15, 16]

    def test_elapsed_is_max_clock(self):
        def prog(comm):
            comm.clock.charge_compute(float(comm.rank))

        res = run_spmd(4, prog)
        assert res.elapsed == pytest.approx(3.0)

    def test_nranks_validation(self):
        with pytest.raises(ValueError, match="nranks"):
            run_spmd(0, lambda comm: None)
        with pytest.raises(ValueError, match="functional simulator"):
            run_spmd(100_000, lambda comm: None)

    def test_error_carries_failing_rank(self):
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("specific failure")
            comm.barrier()

        with pytest.raises(SpmdError) as e:
            run_spmd(4, prog)
        assert e.value.rank == 2
        assert isinstance(e.value.original, ValueError)

    def test_timing_noise_reproducible(self):
        def prog(comm):
            comm.allreduce(np.ones(1000))
            return comm.clock.now

        a = run_spmd(3, prog, machine=CORI_KNL, seed=1, timing_noise=True)
        b = run_spmd(3, prog, machine=CORI_KNL, seed=1, timing_noise=True)
        c = run_spmd(3, prog, machine=CORI_KNL, seed=2, timing_noise=True)
        assert a.values == b.values
        assert a.values != c.values

    def test_breakdown_reports_all_categories(self):
        res = run_spmd(2, lambda comm: comm.barrier())
        bd = res.breakdown()
        assert set(bd) == {c.value for c in TimeCategory}


class TestRankClock:
    def test_charge_accumulates(self):
        clock = RankClock()
        clock.charge(TimeCategory.COMPUTE, 1.5)
        clock.charge(TimeCategory.COMPUTE, 0.5)
        clock.charge(TimeCategory.DATA_IO, 1.0)
        assert clock.now == pytest.approx(3.0)
        assert clock.breakdown[TimeCategory.COMPUTE] == pytest.approx(2.0)
        assert clock.total() == pytest.approx(clock.now)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            RankClock().charge(TimeCategory.COMPUTE, -1.0)

    def test_bad_category_rejected(self):
        with pytest.raises(TypeError, match="TimeCategory"):
            RankClock().charge("compute", 1.0)

    def test_advance_to_never_goes_backward(self):
        clock = RankClock()
        clock.charge_compute(5.0)
        clock.advance_to(3.0, TimeCategory.COMMUNICATION)
        assert clock.now == pytest.approx(5.0)
        clock.advance_to(7.0, TimeCategory.COMMUNICATION)
        assert clock.now == pytest.approx(7.0)
        assert clock.breakdown[TimeCategory.COMMUNICATION] == pytest.approx(2.0)

    def test_snapshot_keys(self):
        snap = RankClock().snapshot()
        assert set(snap) == {c.value for c in TimeCategory}

    def test_merge_breakdowns_max_and_mean(self):
        c1, c2 = RankClock(), RankClock()
        c1.charge_compute(2.0)
        c2.charge_compute(4.0)
        assert merge_breakdowns([c1, c2], how="max")["computation"] == 4.0
        assert merge_breakdowns([c1, c2], how="mean")["computation"] == 3.0
        with pytest.raises(ValueError, match="how"):
            merge_breakdowns([c1], how="median")
        with pytest.raises(ValueError, match="at least one"):
            merge_breakdowns([])


class TestTimingModels:
    def test_single_rank_collectives_free(self):
        for fn in (timing.allreduce_time, timing.bcast_time, timing.gather_time,
                   timing.allgather_time):
            assert fn(CORI_KNL, 1024, 1) == 0.0
        assert timing.barrier_time(CORI_KNL, 1) == 0.0

    @given(nbytes=st.integers(0, 10**9), P=st.integers(2, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_allreduce_positive_and_monotone_in_bytes(self, nbytes, P):
        t = timing.allreduce_time(CORI_KNL, nbytes, P)
        t2 = timing.allreduce_time(CORI_KNL, nbytes + 1024, P)
        assert t > 0
        assert t2 >= t

    @given(P=st.integers(2, 2**20))
    @settings(max_examples=30, deadline=None)
    def test_latency_grows_logarithmically(self, P):
        t = timing.allreduce_time(CORI_KNL, 0, P)
        t2 = timing.allreduce_time(CORI_KNL, 0, 2 * P)
        assert t2 >= t
        # Doubling P adds exactly 2 alpha of latency at zero bytes.
        assert t2 - t == pytest.approx(2 * CORI_KNL.net_latency_s, rel=1e-6)

    def test_p2p_affine_in_bytes(self):
        a = timing.p2p_time(CORI_KNL, 0)
        b = timing.p2p_time(CORI_KNL, 8_000_000)
        assert a == pytest.approx(CORI_KNL.net_latency_s)
        assert b - a == pytest.approx(8e6 / (CORI_KNL.net_bw_gbs * 1e9))

    def test_rma_contention_scales_transfer(self):
        base = timing.rma_time(CORI_KNL, 10**6, contention=1)
        busy = timing.rma_time(CORI_KNL, 10**6, contention=4)
        transfer = base - CORI_KNL.net_latency_s
        assert busy == pytest.approx(CORI_KNL.net_latency_s + 4 * transfer)

    def test_allreduce_minmax_brackets_base(self):
        rng = np.random.default_rng(0)
        tmin, tmax = timing.allreduce_minmax(CORI_KNL, 321_000, 4352, rng)
        base = timing.allreduce_time(CORI_KNL, 321_000, 4352)
        assert tmin <= base <= tmax
        assert tmax > tmin

    def test_allreduce_minmax_no_noise_machine(self):
        rng = np.random.default_rng(0)
        tmin, tmax = timing.allreduce_minmax(LAPTOP, 1000, 8, rng)
        assert tmin == tmax

    def test_validation(self):
        with pytest.raises(ValueError):
            timing.p2p_time(CORI_KNL, -1)
        with pytest.raises(ValueError):
            timing.rma_time(CORI_KNL, 10, contention=0)
        with pytest.raises(ValueError):
            timing.allreduce_time(CORI_KNL, 10, 0)


class TestMachineModel:
    def test_nodes_for(self):
        assert CORI_KNL.nodes_for(68) == 1
        assert CORI_KNL.nodes_for(69) == 2
        assert CORI_KNL.nodes_for(139_264) == 2048

    def test_with_override(self):
        fast = CORI_KNL.with_(gemm_gflops=100.0)
        assert fast.gemm_gflops == 100.0
        assert fast.net_bw_gbs == CORI_KNL.net_bw_gbs
        assert CORI_KNL.gemm_gflops == 30.83  # original untouched

    def test_paper_calibration_rates(self):
        """The preset carries the paper's measured kernel rates."""
        assert CORI_KNL.gemm_gflops == 30.83
        assert CORI_KNL.gemv_gflops == 1.12
        assert CORI_KNL.trsv_gflops == 0.011
        assert CORI_KNL.sp_gemm_gflops == 1.08
        assert CORI_KNL.sp_gemv_gflops == 2.08
        assert CORI_KNL.cores_per_node == 68
        assert CORI_KNL.ost_count == 160

    def test_validation(self):
        with pytest.raises(ValueError, match="gemm_gflops"):
            CORI_KNL.with_(gemm_gflops=0.0)
        with pytest.raises(ValueError, match="cores_per_node"):
            CORI_KNL.with_(cores_per_node=0)
        with pytest.raises(ValueError, match="net_latency_s"):
            CORI_KNL.with_(net_latency_s=-1.0)
        with pytest.raises(ValueError, match="cores"):
            CORI_KNL.nodes_for(0)
