"""Tests for the serial UoILasso estimator (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import UoILasso, UoILassoConfig
from repro.datasets import make_sparse_regression
from repro.metrics import selection_report

FAST = dict(
    n_lambdas=10,
    n_selection_bootstraps=10,
    n_estimation_bootstraps=6,
    solver="cd",
    random_state=0,
)


@pytest.fixture(scope="module")
def fitted():
    ds = make_sparse_regression(
        200, 25, n_informative=4, snr=10.0, rng=np.random.default_rng(42)
    )
    model = UoILasso(**FAST).fit(ds.X, ds.y)
    return ds, model


class TestFit:
    def test_recovers_true_support_features(self, fitted):
        ds, model = fitted
        rep = selection_report(ds.support, model.coef_)
        assert rep.recall == 1.0  # no false negatives on strong signal
        # Union averaging may admit spurious features, but only with
        # tiny weights: thresholding at a tenth of the smallest true
        # coefficient recovers the support exactly.
        thresh = 0.1 * np.abs(ds.beta[ds.support]).min()
        rep_t = selection_report(ds.support, np.abs(model.coef_) > thresh)
        assert rep_t.exact

    def test_coefficients_close_to_truth(self, fitted):
        ds, model = fitted
        on = ds.support
        np.testing.assert_allclose(model.coef_[on], ds.beta[on], atol=0.25)

    def test_attributes_populated(self, fitted):
        _, model = fitted
        assert model.lambdas_.shape == (10,)
        assert model.supports_.shape == (10, 25)
        assert model.losses_.shape == (6, 10)
        assert model.winners_.shape == (6,)
        assert model.selected_mask_.dtype == bool

    def test_supports_nested_by_lambda(self, fitted):
        """Down the λ path, intersected supports (weakly) grow."""
        _, model = fitted
        sizes = model.supports_.sum(axis=1)
        assert sizes[0] <= sizes[-1]

    def test_score_high_on_training_data(self, fitted):
        ds, model = fitted
        assert model.score(ds.X, ds.y) > 0.9

    def test_predict_shape(self, fitted):
        ds, model = fitted
        assert model.predict(ds.X[:7]).shape == (7,)

    def test_deterministic_given_seed(self):
        ds = make_sparse_regression(
            80, 10, n_informative=3, rng=np.random.default_rng(1)
        )
        a = UoILasso(**FAST).fit(ds.X, ds.y)
        b = UoILasso(**FAST).fit(ds.X, ds.y)
        np.testing.assert_array_equal(a.coef_, b.coef_)

    def test_different_seed_changes_bootstraps(self):
        ds = make_sparse_regression(
            80, 10, n_informative=3, rng=np.random.default_rng(1)
        )
        a = UoILasso(**FAST).fit(ds.X, ds.y)
        b = UoILasso(**{**FAST, "random_state": 99}).fit(ds.X, ds.y)
        assert not np.array_equal(a.losses_, b.losses_)

    def test_admm_and_cd_solvers_agree_on_support(self):
        ds = make_sparse_regression(
            120, 12, n_informative=3, snr=20.0, rng=np.random.default_rng(2)
        )
        a = UoILasso(**{**FAST, "solver": "admm"}).fit(ds.X, ds.y)
        c = UoILasso(**FAST).fit(ds.X, ds.y)
        np.testing.assert_array_equal(a.coef_ != 0, c.coef_ != 0)
        np.testing.assert_allclose(a.coef_, c.coef_, atol=0.05)

    def test_fit_intercept(self):
        rng = np.random.default_rng(3)
        X = rng.standard_normal((150, 8))
        beta = np.zeros(8)
        beta[[1, 5]] = [2.0, -1.5]
        y = 7.0 + X @ beta + 0.1 * rng.standard_normal(150)
        model = UoILasso(**{**FAST, "fit_intercept": True}).fit(X, y)
        assert model.intercept_ == pytest.approx(7.0, abs=0.2)
        preds = model.predict(X)
        assert np.corrcoef(preds, y)[0, 1] > 0.98

    def test_null_signal_gives_weak_model(self):
        """Pure noise: anything UoI keeps must carry near-zero weight."""
        rng = np.random.default_rng(4)
        X = rng.standard_normal((100, 15))
        y = rng.standard_normal(100)
        model = UoILasso(**FAST).fit(X, y)
        assert np.max(np.abs(model.coef_)) < 0.3
        assert (np.abs(model.coef_) > 0.1).sum() <= 3


class TestValidationAndConfig:
    def test_bad_shapes(self):
        m = UoILasso(**FAST)
        with pytest.raises(ValueError, match="2-D"):
            m.fit(np.ones(5), np.ones(5))
        with pytest.raises(ValueError, match="incompatible"):
            m.fit(np.ones((5, 2)), np.ones(4))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            UoILasso().predict(np.ones((2, 2)))
        with pytest.raises(RuntimeError, match="fit"):
            _ = UoILasso().selected_mask_

    def test_config_overrides(self):
        m = UoILasso(UoILassoConfig(n_lambdas=5), random_state=9)
        assert m.config.n_lambdas == 5
        assert m.config.random_state == 9

    def test_config_validation(self):
        with pytest.raises(ValueError):
            UoILassoConfig(n_lambdas=0)
        with pytest.raises(ValueError):
            UoILassoConfig(lambda_min_ratio=2.0)
        with pytest.raises(ValueError):
            UoILassoConfig(n_selection_bootstraps=0)
        with pytest.raises(ValueError):
            UoILassoConfig(train_frac=1.5)
        with pytest.raises(ValueError):
            UoILassoConfig(solver="magic")
        with pytest.raises(ValueError):
            UoILassoConfig(rho=-1.0)

    def test_config_with_(self):
        cfg = UoILassoConfig()
        cfg2 = cfg.with_(n_lambdas=7)
        assert cfg2.n_lambdas == 7
        assert cfg.n_lambdas == 48  # frozen original
