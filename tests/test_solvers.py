"""Tests for coordinate descent, OLS, Ridge, MCP/SCAD and the λ grid."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.linalg import (
    lambda_grid,
    lambda_max,
    lasso_cd,
    mcp_regression,
    ols,
    ols_on_support,
    ridge,
    scad_regression,
)


@pytest.fixture
def problem():
    rng = np.random.default_rng(1)
    n, p = 100, 10
    X = rng.standard_normal((n, p))
    beta = np.zeros(p)
    beta[[0, 3, 7]] = [3.0, -2.0, 2.5]
    y = X @ beta + 0.1 * rng.standard_normal(n)
    return X, y, beta


class TestLambdaGrid:
    def test_lambda_max_zeroes_lasso(self, problem):
        X, y, _ = problem
        lmax = lambda_max(X, y)
        beta = lasso_cd(X, y, lmax * 1.0001)
        np.testing.assert_array_equal(beta, np.zeros(X.shape[1]))

    def test_just_below_lambda_max_selects(self, problem):
        X, y, _ = problem
        beta = lasso_cd(X, y, lambda_max(X, y) * 0.95)
        assert (beta != 0).sum() >= 1

    def test_grid_is_decreasing(self, problem):
        X, y, _ = problem
        grid = lambda_grid(X, y, num=10)
        assert len(grid) == 10
        assert np.all(np.diff(grid) < 0)

    def test_grid_endpoints(self, problem):
        X, y, _ = problem
        grid = lambda_grid(X, y, num=5, eps=1e-2)
        assert grid[0] == pytest.approx(lambda_max(X, y))
        assert grid[-1] == pytest.approx(lambda_max(X, y) * 1e-2)

    def test_degenerate_data_falls_back(self):
        X = np.zeros((4, 2))
        grid = lambda_grid(X, np.zeros(4), num=3)
        assert len(grid) == 3 and np.all(grid > 0)

    def test_validation(self, problem):
        X, y, _ = problem
        with pytest.raises(ValueError, match="num"):
            lambda_grid(X, y, num=0)
        with pytest.raises(ValueError, match="eps"):
            lambda_grid(X, y, eps=2.0)
        with pytest.raises(ValueError, match="y shape"):
            lambda_max(X, y[:-1])


class TestCoordinateDescent:
    def test_ols_limit(self, problem):
        X, y, _ = problem
        np.testing.assert_allclose(
            lasso_cd(X, y, 0.0, max_iter=5000),
            np.linalg.lstsq(X, y, rcond=None)[0],
            atol=1e-5,
        )

    def test_kkt_conditions(self, problem):
        """At the optimum: |2 x_j'(y - Xb)| <= lam, with equality on support."""
        X, y, _ = problem
        lam = 5.0
        beta = lasso_cd(X, y, lam, tol=1e-12)
        grad = 2.0 * X.T @ (y - X @ beta)
        on = beta != 0
        np.testing.assert_allclose(np.abs(grad[on]), lam, rtol=1e-5)
        assert np.all(np.abs(grad[~on]) <= lam * (1 + 1e-6))

    def test_zero_column_stays_zero(self):
        rng = np.random.default_rng(2)
        X = rng.standard_normal((30, 4))
        X[:, 2] = 0.0
        y = rng.standard_normal(30)
        beta = lasso_cd(X, y, 0.5)
        assert beta[2] == 0.0

    def test_warm_start(self, problem):
        X, y, _ = problem
        cold = lasso_cd(X, y, 3.0)
        warm = lasso_cd(X, y, 3.0, beta0=cold)
        np.testing.assert_allclose(cold, warm, atol=1e-8)

    def test_validation(self, problem):
        X, y, _ = problem
        with pytest.raises(ValueError, match="lam"):
            lasso_cd(X, y, -1.0)
        with pytest.raises(ValueError, match="beta0"):
            lasso_cd(X, y, 1.0, beta0=np.zeros(3))


class TestOls:
    def test_exact_on_square_system(self):
        rng = np.random.default_rng(3)
        X = rng.standard_normal((6, 6))
        beta = rng.standard_normal(6)
        np.testing.assert_allclose(ols(X, X @ beta), beta, atol=1e-8)

    def test_rank_deficient_does_not_blow_up(self):
        X = np.ones((10, 3))  # rank 1
        y = np.ones(10)
        beta = ols(X, y)
        np.testing.assert_allclose(X @ beta, y, atol=1e-8)

    def test_on_support_zeros_off_support(self, problem):
        X, y, _ = problem
        mask = np.zeros(10, dtype=bool)
        mask[[0, 3]] = True
        beta = ols_on_support(X, y, mask)
        assert np.all(beta[~mask] == 0.0)
        restricted = ols(X[:, [0, 3]], y)
        np.testing.assert_allclose(beta[[0, 3]], restricted)

    def test_integer_index_support(self, problem):
        X, y, _ = problem
        by_mask = ols_on_support(X, y, np.array([True] + [False] * 9))
        by_idx = ols_on_support(X, y, np.array([0]))
        np.testing.assert_allclose(by_mask, by_idx)

    def test_empty_support_gives_zero(self, problem):
        X, y, _ = problem
        np.testing.assert_array_equal(
            ols_on_support(X, y, np.zeros(10, dtype=bool)), np.zeros(10)
        )

    def test_validation(self, problem):
        X, y, _ = problem
        with pytest.raises(ValueError, match="support"):
            ols_on_support(X, y, np.zeros(4, dtype=bool))
        with pytest.raises(ValueError, match="out of range"):
            ols_on_support(X, y, np.array([99]))


class TestRidge:
    def test_shrinks_toward_zero(self, problem):
        X, y, _ = problem
        b_small = ridge(X, y, 0.01)
        b_big = ridge(X, y, 1e6)
        assert np.linalg.norm(b_big) < np.linalg.norm(b_small)

    def test_matches_normal_equations(self, problem):
        X, y, _ = problem
        lam = 3.0
        expected = np.linalg.solve(X.T @ X + lam * np.eye(10), X.T @ y)
        np.testing.assert_allclose(ridge(X, y, lam), expected, atol=1e-8)

    def test_never_exactly_sparse(self, problem):
        X, y, _ = problem
        assert np.all(ridge(X, y, 10.0) != 0.0)

    def test_validation(self, problem):
        X, y, _ = problem
        with pytest.raises(ValueError, match="lam"):
            ridge(X, y, 0.0)


class TestNonconvex:
    def test_mcp_less_biased_than_lasso(self, problem):
        X, y, beta = problem
        lam = 8.0
        b_lasso = lasso_cd(X, y, lam)
        b_mcp = mcp_regression(X, y, lam)
        on = beta != 0
        lasso_bias = np.mean(np.abs(beta[on]) - np.abs(b_lasso[on]))
        mcp_bias = np.mean(np.abs(beta[on]) - np.abs(b_mcp[on]))
        assert mcp_bias < lasso_bias

    def test_scad_recovers_support(self, problem):
        X, y, beta = problem
        b = scad_regression(X, y, 8.0)
        assert set(np.flatnonzero(b)) == set(np.flatnonzero(beta))

    def test_mcp_recovers_support(self, problem):
        X, y, beta = problem
        b = mcp_regression(X, y, 8.0)
        assert set(np.flatnonzero(b)) == set(np.flatnonzero(beta))

    def test_validation(self, problem):
        X, y, _ = problem
        with pytest.raises(ValueError, match="lam"):
            mcp_regression(X, y, -1.0)
        with pytest.raises(ValueError, match="lam"):
            scad_regression(X, y, -1.0)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), lam=st.floats(0.1, 50.0))
def test_cd_never_beats_optimum_found_by_admm(seed, lam):
    """Both solvers minimize the same objective: their objective values
    must agree to tolerance on random problems."""
    from repro.linalg import LassoADMM

    rng = np.random.default_rng(seed)
    X = rng.standard_normal((30, 6))
    y = rng.standard_normal(30)
    solver = LassoADMM(X, y)
    obj_admm = solver.objective(solver.solve(lam).beta, lam)
    obj_cd = solver.objective(lasso_cd(X, y, lam), lam)
    assert obj_admm == pytest.approx(obj_cd, rel=1e-2, abs=1e-4)


class TestCovarianceUpdates:
    """Gram-cached (glmnet 'covariance updates') coordinate descent."""

    def test_matches_naive_mode(self, problem):
        X, y, _ = problem
        from repro.linalg import precompute_gram

        gram, _, col_sq = precompute_gram(X)
        for lam in (0.0, 2.0, 10.0):
            naive = lasso_cd(X, y, lam, tol=1e-11)
            cov = lasso_cd(
                X, y, lam, tol=1e-11, precomputed=(gram, X.T @ y, col_sq)
            )
            np.testing.assert_allclose(naive, cov, atol=1e-8)

    def test_warm_start_supported(self, problem):
        X, y, _ = problem
        from repro.linalg import precompute_gram

        gram, _, col_sq = precompute_gram(X)
        triple = (gram, X.T @ y, col_sq)
        cold = lasso_cd(X, y, 3.0, precomputed=triple)
        warm = lasso_cd(X, y, 3.0, beta0=cold, precomputed=triple)
        np.testing.assert_allclose(cold, warm, atol=1e-8)

    def test_shape_validation(self, problem):
        X, y, _ = problem
        from repro.linalg import precompute_gram

        gram, _, col_sq = precompute_gram(X)
        with pytest.raises(ValueError, match="inconsistent"):
            lasso_cd(X, y, 1.0, precomputed=(gram[:2], X.T @ y, col_sq))

    def test_precompute_gram_values(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((20, 4))
        from repro.linalg import precompute_gram

        gram, zeros, col_sq = precompute_gram(X)
        np.testing.assert_allclose(gram, X.T @ X)
        np.testing.assert_allclose(col_sq, np.diag(X.T @ X))
        np.testing.assert_array_equal(zeros, np.zeros(4))
        with pytest.raises(ValueError, match="2-D"):
            precompute_gram(np.ones(3))
