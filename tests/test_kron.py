"""Tests for the vec / I ⊗ X machinery (eq. 9)."""

import numpy as np
import pytest
import scipy.sparse
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.linalg import (
    IdentityKronOperator,
    identity_kron,
    kron_lasso_columnwise,
    lasso_cd,
    unvec,
    vec,
)
from repro.linalg.kron import kron_sparsity

matrices = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 6), st.integers(1, 6)),
    elements=st.floats(-10, 10, allow_nan=False),
)


class TestVec:
    def test_column_stacking_order(self):
        Y = np.array([[1.0, 3.0], [2.0, 4.0]])
        np.testing.assert_array_equal(vec(Y), [1.0, 2.0, 3.0, 4.0])

    @given(Y=matrices)
    def test_roundtrip(self, Y):
        np.testing.assert_array_equal(unvec(vec(Y), Y.shape), Y)

    @given(Y=matrices)
    def test_matches_numpy_fortran_flatten(self, Y):
        np.testing.assert_array_equal(vec(Y), Y.flatten(order="F"))

    def test_vec_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            vec(np.ones(3))

    def test_unvec_rejects_bad_length(self):
        with pytest.raises(ValueError, match="length"):
            unvec(np.ones(5), (2, 3))


class TestIdentityKron:
    def test_matches_numpy_kron_dense(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((3, 2))
        np.testing.assert_allclose(
            identity_kron(X, 4, sparse=False), np.kron(np.eye(4), X)
        )

    def test_sparse_matches_dense(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((3, 2))
        sp = identity_kron(X, 3, sparse=True)
        assert scipy.sparse.issparse(sp)
        np.testing.assert_allclose(sp.toarray(), identity_kron(X, 3, sparse=False))

    def test_sparsity_law(self):
        """Paper: sparsity of the lifted design is 1 - 1/p."""
        X = np.ones((4, 3))
        for p in (2, 5, 95):
            lifted = identity_kron(X, p, sparse=True)
            measured = 1.0 - lifted.nnz / (lifted.shape[0] * lifted.shape[1])
            assert measured == pytest.approx(kron_sparsity(p))

    def test_paper_sparsity_example(self):
        # "if a data set has 95 features, the resultant matrix ... has a
        # sparsity of 98.94%"
        assert kron_sparsity(95) == pytest.approx(0.9894, abs=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError, match="p"):
            identity_kron(np.ones((2, 2)), 0)


class TestIdentityKronOperator:
    @given(
        seed=st.integers(0, 1000),
        m=st.integers(1, 5),
        k=st.integers(1, 5),
        p=st.integers(1, 5),
    )
    @settings(max_examples=30, deadline=None)
    def test_matvec_matches_materialized(self, seed, m, k, p):
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((m, k))
        op = IdentityKronOperator(X, p)
        v = rng.standard_normal(k * p)
        np.testing.assert_allclose(op.matvec(v), op.toarray() @ v, atol=1e-10)

    @given(
        seed=st.integers(0, 1000),
        m=st.integers(1, 5),
        k=st.integers(1, 5),
        p=st.integers(1, 5),
    )
    @settings(max_examples=30, deadline=None)
    def test_rmatvec_matches_materialized(self, seed, m, k, p):
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((m, k))
        op = IdentityKronOperator(X, p)
        w = rng.standard_normal(m * p)
        np.testing.assert_allclose(op.rmatvec(w), op.toarray().T @ w, atol=1e-10)

    def test_shape(self):
        op = IdentityKronOperator(np.ones((3, 2)), 5)
        assert op.shape == (15, 10)

    def test_dim_validation(self):
        op = IdentityKronOperator(np.ones((3, 2)), 2)
        with pytest.raises(ValueError, match="matvec"):
            op.matvec(np.ones(5))
        with pytest.raises(ValueError, match="rmatvec"):
            op.rmatvec(np.ones(5))


class TestColumnwiseEquivalence:
    def test_columnwise_equals_lifted_lasso(self):
        """The block-diagonal LASSO decomposes exactly per column."""
        rng = np.random.default_rng(5)
        m, k, p = 30, 4, 3
        X = rng.standard_normal((m, k))
        Y = rng.standard_normal((m, p))
        lam = 2.0
        by_columns = kron_lasso_columnwise(X, Y, lam, lasso_cd)
        lifted = identity_kron(X, p, sparse=False)
        direct = lasso_cd(lifted, vec(Y), lam, max_iter=5000)
        np.testing.assert_allclose(by_columns, direct, atol=1e-5)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="incompatible"):
            kron_lasso_columnwise(np.ones((4, 2)), np.ones((5, 2)), 1.0, lasso_cd)


class TestDtypePreservation:
    """Regression: float32 input must not silently upcast mid-pipeline.

    The lifted design is ~p^3 the data size, so a silent float64
    promotion doubles peak memory exactly where it hurts most.
    """

    def test_identity_kron_dense_preserves_float32(self):
        X = np.ones((3, 2), dtype=np.float32)
        assert identity_kron(X, 4, sparse=False).dtype == np.float32

    def test_identity_kron_sparse_preserves_float32(self):
        X = np.ones((3, 2), dtype=np.float32)
        assert identity_kron(X, 4).dtype == np.float32

    def test_identity_kron_defaults_to_float64(self):
        assert identity_kron(np.ones((3, 2), dtype=np.int64), 2).dtype == np.float64
        assert identity_kron(np.ones((3, 2)), 2, sparse=False).dtype == np.float64

    def test_operator_matvec_and_rmatvec_preserve_float32(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((4, 3)).astype(np.float32)
        op = IdentityKronOperator(X, 2)
        assert op.X.dtype == np.float32
        assert op.matvec(np.ones(6)).dtype == np.float32
        assert op.rmatvec(np.ones(8)).dtype == np.float32
        assert op.toarray().dtype == np.float32

    def test_columnwise_preserves_float32(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((20, 3)).astype(np.float32)
        Y = rng.standard_normal((20, 2)).astype(np.float32)
        out = kron_lasso_columnwise(X, Y, 0.5, lasso_cd)
        assert out.dtype == np.float32

    def test_columnwise_mixed_dtypes_promote_to_float64(self):
        rng = np.random.default_rng(2)
        X = rng.standard_normal((20, 3)).astype(np.float32)
        Y = rng.standard_normal((20, 2))
        out = kron_lasso_columnwise(X, Y, 0.5, lasso_cd)
        assert out.dtype == np.float64

    def test_float32_matches_float64_solution(self):
        rng = np.random.default_rng(3)
        X = rng.standard_normal((25, 4))
        Y = rng.standard_normal((25, 3))
        full = kron_lasso_columnwise(X, Y, 1.0, lasso_cd)
        single = kron_lasso_columnwise(
            X.astype(np.float32), Y.astype(np.float32), 1.0, lasso_cd
        )
        np.testing.assert_allclose(single, full, atol=1e-3)
