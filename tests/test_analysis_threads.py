"""LOCK5xx static pass: rules, fixtures, suppressions, and the gate.

The seeded fixtures (`tests/fixtures/lock_order_inversion.py`,
`tests/fixtures/lock_bare_wait.py`) are asserted by exact rule ID and
line number — they are the regression contract for the pass's
precision.  The shipped-tree tests pin that ``repro check threads``
runs clean on ``src/repro`` and that the one real finding the pass
surfaced (the elastic executor's unlocked ``_procs`` teardown) stays
fixed.
"""

import os
import textwrap

import pytest

from repro.analysis.rules import RULES, THREAD_RULES
from repro.analysis.threads import (
    default_threads_paths,
    threads_check_paths,
    threads_check_source,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def check(source: str) -> list:
    return threads_check_source(textwrap.dedent(source), "<test>")


class TestRuleRegistry:
    def test_thread_rules_registered(self):
        assert [r.id for r in THREAD_RULES] == [
            "LOCK501",
            "LOCK502",
            "LOCK503",
            "LOCK504",
        ]
        for rule in THREAD_RULES:
            assert RULES[rule.id] is rule
            assert rule.severity == "error"

    def test_dyn206_registered(self):
        assert RULES["DYN206"].name == "lock-order-violation"


class TestSeededFixtures:
    def test_lock_order_inversion_fixture_exact(self):
        path = os.path.join(FIXTURES, "lock_order_inversion.py")
        findings = threads_check_paths([path])
        assert [(f.rule, f.line) for f in findings] == [
            ("LOCK501", 22),
            ("LOCK501", 28),
        ]
        edges = {tuple(f.context["edge"]) for f in findings}
        assert edges == {
            ("Accounts._ledger", "Accounts._audit"),
            ("Accounts._audit", "Accounts._ledger"),
        }

    def test_bare_wait_fixture_exact(self):
        path = os.path.join(FIXTURES, "lock_bare_wait.py")
        findings = threads_check_paths([path])
        assert [(f.rule, f.line) for f in findings] == [("LOCK502", 24)]
        assert findings[0].context["lock"] == "Mailbox.cond"


class TestLockOrderInversion:
    def test_consistent_order_is_clean(self):
        assert not check(
            """
            import threading

            class Box:
                def __init__(self):
                    self.a = threading.Lock()
                    self.b = threading.Lock()

                def one(self):
                    with self.a:
                        with self.b:
                            pass

                def two(self):
                    with self.a:
                        with self.b:
                            pass
            """
        )

    def test_inversion_through_a_call_is_reported(self):
        findings = check(
            """
            import threading

            class Box:
                def __init__(self):
                    self.a = threading.Lock()
                    self.b = threading.Lock()

                def helper(self):
                    with self.a:
                        pass

                def one(self):
                    with self.b:
                        self.helper()

                def two(self):
                    with self.a:
                        with self.b:
                            pass
            """
        )
        assert [f.rule for f in findings] == ["LOCK501", "LOCK501"]

    def test_reentrant_same_lock_is_clean(self):
        assert not check(
            """
            import threading

            class Box:
                def __init__(self):
                    self.a = threading.RLock()

                def outer(self):
                    with self.a:
                        self.inner()

                def inner(self):
                    with self.a:
                        pass
            """
        )

    def test_cross_class_inversion_via_unique_attr(self):
        findings = check(
            """
            import threading

            class Store:
                def __init__(self):
                    self.shard = threading.Lock()

            class Sched:
                def __init__(self):
                    self.cv = threading.Condition()
                    self.store = Store()

                def claim(self, store: Store):
                    with self.cv:
                        with store.shard:
                            pass

                def publish(self, store: Store):
                    with store.shard:
                        with self.cv:
                            pass
            """
        )
        assert [f.rule for f in findings] == ["LOCK501", "LOCK501"]


class TestBareConditionWait:
    def test_while_predicate_wait_is_clean(self):
        assert not check(
            """
            import threading

            class Q:
                def __init__(self):
                    self.cond = threading.Condition()
                    self.items = []

                def take(self):
                    with self.cond:
                        while not self.items:
                            self.cond.wait()
                        return self.items.pop()
            """
        )

    def test_while_true_wait_is_reported(self):
        findings = check(
            """
            import threading

            class Q:
                def __init__(self):
                    self.cond = threading.Condition()
                    self.items = []

                def take(self):
                    with self.cond:
                        while True:
                            self.cond.wait()
            """
        )
        assert [f.rule for f in findings] == ["LOCK502"]
        assert "while True" in findings[0].message

    def test_event_wait_is_not_a_condition_wait(self):
        assert not check(
            """
            import threading

            class J:
                def __init__(self):
                    self.done = threading.Event()

                def block(self):
                    self.done.wait()
            """
        )

    def test_wait_for_is_exempt(self):
        assert not check(
            """
            import threading

            class Q:
                def __init__(self):
                    self.cond = threading.Condition()
                    self.items = []

                def take(self):
                    with self.cond:
                        self.cond.wait_for(lambda: self.items)
            """
        )

    def test_dataclass_condition_field_is_recognized(self):
        findings = check(
            """
            import threading
            from dataclasses import dataclass, field

            @dataclass
            class Job:
                cond: threading.Condition = field(
                    default_factory=threading.Condition
                )
                state: str = "queued"

                def block(self):
                    with self.cond:
                        if self.state == "queued":
                            self.cond.wait()
            """
        )
        assert [f.rule for f in findings] == ["LOCK502"]


class TestUnlockedSharedWrite:
    def test_unlocked_write_is_reported(self):
        findings = check(
            """
            import threading

            class C:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self.lock:
                        self.count += 1

                def reset(self):
                    self.count = 0
            """
        )
        assert [f.rule for f in findings] == ["LOCK503"]
        assert findings[0].context["attribute"] == "count"

    def test_init_writes_are_exempt(self):
        assert not check(
            """
            import threading

            class C:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self.lock:
                        self.count += 1
            """
        )

    def test_helper_called_under_lock_is_covered(self):
        assert not check(
            """
            import threading

            class C:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self.lock:
                        self._bump_locked()

                def _bump_locked(self):
                    self.count += 1
            """
        )

    def test_container_mutation_counts_as_write(self):
        findings = check(
            """
            import threading

            class C:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.items = []

                def add(self, x):
                    with self.lock:
                        self.items.append(x)

                def wipe(self):
                    self.items.clear()
            """
        )
        assert [f.rule for f in findings] == ["LOCK503"]

    def test_snapshot_and_swap_under_lock_is_clean(self):
        # The idiom the elastic shutdown fix uses.
        assert not check(
            """
            import threading

            class C:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.procs = []

                def start(self, p):
                    with self.lock:
                        self.procs.append(p)

                def stop(self):
                    with self.lock:
                        procs, self.procs = self.procs, []
                    for p in procs:
                        p.wait()
            """
        )


class TestBlockingUnderLock:
    def test_future_result_under_lock_is_reported(self):
        findings = check(
            """
            import threading

            class C:
                def __init__(self):
                    self.lock = threading.Lock()

                def run(self, future):
                    with self.lock:
                        return future.result()
            """
        )
        assert [f.rule for f in findings] == ["LOCK504"]
        assert findings[0].context["call"] == "result()"

    def test_sleep_under_lock_is_reported(self):
        findings = check(
            """
            import threading
            import time

            class C:
                def __init__(self):
                    self.lock = threading.Lock()

                def nap(self):
                    with self.lock:
                        time.sleep(1.0)
            """
        )
        assert [f.rule for f in findings] == ["LOCK504"]

    def test_blocking_outside_lock_is_clean(self):
        assert not check(
            """
            import threading
            import time

            class C:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.n = 0

                def run(self, future):
                    with self.lock:
                        self.n += 1
                    time.sleep(0.1)
                    return future.result()
            """
        )

    def test_dict_get_is_not_blocking(self):
        assert not check(
            """
            import threading

            class C:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.d = {}

                def read(self, k):
                    with self.lock:
                        return self.d.get(k)
            """
        )

    def test_condition_wait_is_not_lock504(self):
        # wait() releases the lock while blocked — only LOCK502 applies.
        findings = check(
            """
            import threading

            class C:
                def __init__(self):
                    self.cond = threading.Condition()
                    self.ready = False

                def block(self):
                    with self.cond:
                        while not self.ready:
                            self.cond.wait()
            """
        )
        assert findings == []


class TestSuppressions:
    SOURCE = """
        import threading

        class C:
            def __init__(self):
                self.lock = threading.Lock()

            def run(self, future):
                with self.lock:
                    return future.result(){suffix}
        """

    def test_targeted_suppression_silences(self):
        assert not check(self.SOURCE.format(suffix="  # repro: ignore[LOCK504]"))

    def test_stale_lock_suppression_is_sup001(self):
        findings = check(
            """
            import threading

            class C:
                def __init__(self):
                    self.lock = threading.Lock()  # repro: ignore[LOCK501]
            """
        )
        assert [f.rule for f in findings] == ["SUP001"]

    def test_foreign_family_suppressions_are_not_audited(self):
        # A SHAPE directive in scanned source is not this pass's business.
        assert not check(
            """
            import numpy as np

            def f(x):
                return x + np.eye(3)  # repro: ignore[SHAPE102]
            """
        )


class TestShippedTree:
    def test_src_repro_is_clean(self):
        """The gate: zero LOCK findings over the whole package."""
        assert threads_check_paths() == []

    def test_default_paths_is_package_root(self):
        (root,) = default_threads_paths()
        assert os.path.basename(root) == "repro"

    def test_elastic_shutdown_swaps_procs_under_lock(self):
        """Regression pin for the LOCK503 finding this pass surfaced:
        ``ElasticExecutor.shutdown`` used to clear ``self._procs``
        after releasing ``_lock``, racing ``ensure_fleet``.  The fix
        snapshots-and-swaps under the lock; re-introducing the
        unlocked ``clear()`` must re-fire LOCK503."""
        import inspect

        from repro.engine import elastic

        source = inspect.getsource(elastic.ElasticExecutor.shutdown)
        assert "procs, self._procs = self._procs, []" in source
        assert "self._procs.clear()" not in source

        broken = source.replace(
            "            procs, self._procs = self._procs, []\n", ""
        ).replace("for proc in procs:", "for proc in self._procs:")
        module = (
            "import subprocess\nimport threading\nimport time\n\n\n"
            "class ElasticExecutor:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "        self._closed = False\n"
            "        self._procs = []\n"
            "        self.hub = None\n\n"
            "    def ensure_fleet(self):\n"
            "        with self._lock:\n"
            "            self._procs.append(object())\n\n"
            + broken
            + "        self._procs.clear()\n"
        )
        findings = threads_check_source(module, "<broken-shutdown>")
        assert any(
            f.rule == "LOCK503" and f.context["attribute"] == "_procs"
            for f in findings
        )

    def test_elastic_run_stage_suppression_is_live(self):
        """The intentional whole-stage serialization keeps its
        documented LOCK504 suppression; if the lock scope ever shrinks
        the directive goes stale and SUP001 fires here."""
        path = os.path.join(
            os.path.dirname(__file__), "..", "src", "repro", "engine", "elastic.py"
        )
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        assert source.count("repro: ignore[LOCK504]") == 1
        assert threads_check_paths([path]) == []


class TestCheckWiring:
    def test_threads_mode_in_cli_and_api(self):
        from repro.analysis.check import MODES, run_threads

        assert "threads" in MODES
        assert run_threads() == []

    def test_sarif_includes_lock_rules(self):
        """LOCK/DYN206 findings export with full registry metadata."""
        import json

        from repro.analysis.findings import Finding
        from repro.analysis.rules import get_rule
        from repro.analysis.sarif import findings_to_sarif

        findings = threads_check_paths(
            [
                os.path.join(FIXTURES, "lock_order_inversion.py"),
                os.path.join(FIXTURES, "lock_bare_wait.py"),
            ]
        )
        dyn = get_rule("DYN206")
        findings.append(
            Finding(
                rule=dyn.id,
                severity=dyn.severity,
                message="lock-order inversion observed",
                file="<runtime>",
                line=0,
                source="dynamic",
                context={},
            )
        )
        sarif = json.loads(findings_to_sarif(findings))
        (run,) = sarif["runs"]
        rules = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
        assert {"LOCK501", "LOCK502", "DYN206"} <= set(rules)
        assert rules["LOCK501"]["defaultConfiguration"]["level"] == "error"
        assert {r["ruleId"] for r in run["results"]} == set(rules)


@pytest.mark.parametrize("path", ["lock_order_inversion.py", "lock_bare_wait.py"])
def test_fixtures_are_importable(path):
    """The seeded fixtures must stay valid Python (ast.parse targets)."""
    with open(os.path.join(FIXTURES, path), "r", encoding="utf-8") as fh:
        compile(fh.read(), path, "exec")
