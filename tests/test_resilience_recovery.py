"""Golden determinism: crash + restart reproduces uninterrupted runs."""

import numpy as np
import pytest

from repro.core import UoILasso, UoILassoConfig, UoIVar, UoIVarConfig
from repro.core.parallel import distributed_uoi_lasso, distributed_uoi_var
from repro.datasets import make_sparse_regression, make_sparse_var
from repro.engine import (
    EngineHook,
    LassoPlan,
    MultiprocessExecutor,
    SerialExecutor,
    SimMpiExecutor,
    run_plan,
)
from repro.experiments import resilience
from repro.pfs import SimH5File
from repro.resilience import (
    CheckpointHook,
    CheckpointPlan,
    CheckpointStore,
    FaultPlan,
    recovered_loss_table,
    run_with_recovery,
    store_progress,
)
from repro.simmpi import LAPTOP, run_spmd

CFG = UoILassoConfig(
    n_lambdas=6,
    n_selection_bootstraps=4,
    n_estimation_bootstraps=3,
    random_state=5,
)


@pytest.fixture(scope="module")
def lasso_job():
    ds = make_sparse_regression(
        96, 10, n_informative=3, snr=15.0, rng=np.random.default_rng(11)
    )
    file = SimH5File("/recovery.h5")
    file.create_dataset("data", np.column_stack([ds.y, ds.X]))

    def job(comm, checkpoint=None):
        return distributed_uoi_lasso(
            comm, file, "data", CFG, pb=2, checkpoint=checkpoint
        )

    return job


def assert_bitwise(out, ref):
    assert out.coef.tobytes() == ref.coef.tobytes()
    np.testing.assert_array_equal(out.supports, ref.supports)
    assert out.losses.tobytes() == ref.losses.tobytes()
    np.testing.assert_array_equal(out.winners, ref.winners)


class TestGoldenDeterminismLasso:
    def test_crash_resume_bitwise_and_recovery_floor(self, lasso_job, tmp_path):
        ref = run_spmd(4, lasso_job, machine=LAPTOP)
        assert ref.completed

        store = CheckpointStore(tmp_path / "ckpt")
        ck = CheckpointPlan(store, cadence=1)
        plan = FaultPlan().crash(1, at_time=0.5 * ref.elapsed)

        failed = run_spmd(
            4, lasso_job, machine=LAPTOP, fault_plan=plan, checkpoint=ck
        )
        assert set(failed.failed_ranks) == {1}
        pre_crash = len(store)
        assert pre_crash > 0  # the crash landed mid-run, after checkpoints

        resumed = run_spmd(
            4, lasso_job, machine=LAPTOP, fault_plan=plan, checkpoint=ck
        )
        assert resumed.completed
        out = resumed.values[0]
        assert_bitwise(out, ref.values[0])
        # Acceptance floor: >= 80% of pre-crash completed subproblems
        # come back from checkpoint rather than being recomputed.
        assert out.recovered_subproblems >= 0.8 * pre_crash
        assert out.recovered_subproblems + out.completed_subproblems == (
            CFG.n_selection_bootstraps * CFG.n_lambdas
            + CFG.n_estimation_bootstraps * CFG.n_lambdas
        )

    def test_recovered_loss_table_matches_result(self, lasso_job, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        res = run_spmd(
            4, lasso_job, machine=LAPTOP, checkpoint=CheckpointPlan(store)
        )
        out = res.values[0]
        table = recovered_loss_table(
            store, CFG.n_estimation_bootstraps, CFG.n_lambdas
        )
        assert np.isfinite(table).all()
        np.testing.assert_array_equal(table, out.losses)

    def test_store_progress_counts_prefixes(self, lasso_job, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        run_spmd(4, lasso_job, machine=LAPTOP, checkpoint=CheckpointPlan(store))
        progress = store_progress(store)
        assert progress["sel"] == CFG.n_selection_bootstraps * CFG.n_lambdas
        assert progress["est"] == CFG.n_estimation_bootstraps * CFG.n_lambdas
        assert progress["total"] == progress["sel"] + progress["est"]


class TestGoldenDeterminismVar:
    def test_crash_resume_bitwise(self, tmp_path):
        sv = make_sparse_var(3, 40, rng=np.random.default_rng(18))
        vcfg = UoIVarConfig(
            order=1,
            lasso=UoILassoConfig(
                n_lambdas=4,
                n_selection_bootstraps=2,
                n_estimation_bootstraps=2,
                random_state=7,
            ),
        )

        def job(comm, checkpoint=None):
            return distributed_uoi_var(
                comm,
                sv.series if comm.rank == 0 else None,
                vcfg,
                n_readers=1,
                checkpoint=checkpoint,
            )

        ref = run_spmd(2, job, machine=LAPTOP)
        store = CheckpointStore(tmp_path / "ckpt")
        ck = CheckpointPlan(store)
        plan = FaultPlan().crash(1, at_time=0.5 * ref.elapsed)
        outcome = run_with_recovery(
            2, job, machine=LAPTOP, fault_plan=plan, checkpoint=ck
        )
        assert outcome.n_restarts == 1
        out = outcome.result.values[0]
        assert_bitwise(out, ref.values[0])
        assert outcome.recovered_subproblems > 0
        progress = store_progress(store)
        assert set(progress) <= {"var-sel", "var-est", "total"}


class TestRunWithRecovery:
    def test_attempts_lost_time_and_render(self, lasso_job, tmp_path):
        ref = run_spmd(4, lasso_job, machine=LAPTOP)
        store = CheckpointStore(tmp_path / "ckpt")
        plan = FaultPlan().crash(2, at_time=0.5 * ref.elapsed)
        outcome = run_with_recovery(
            4, lasso_job, machine=LAPTOP, fault_plan=plan,
            checkpoint=CheckpointPlan(store),
        )
        assert len(outcome.attempts) == 2
        assert not outcome.attempts[0].completed
        assert outcome.attempts[1].completed
        assert outcome.lost_time == outcome.attempts[0].elapsed > 0.0
        assert outcome.final_elapsed == outcome.result.elapsed
        assert 0.0 < outcome.recovery_fraction <= 1.0
        report = outcome.render()
        assert "FAILED" in report and "rank 2" in report
        assert "recovery fraction" in report
        assert_bitwise(outcome.result.values[0], ref.values[0])

    def test_clean_run_needs_no_restart(self, lasso_job):
        outcome = run_with_recovery(4, lasso_job, machine=LAPTOP)
        assert outcome.n_restarts == 0
        assert outcome.lost_time == 0.0
        assert outcome.recovery_fraction == 0.0

    def test_max_restarts_exceeded_raises(self):
        # Two scheduled crashes on the same rank fire one per attempt
        # (the first raise leaves the second armed); one restart allowed.
        plan = (
            FaultPlan().crash(0, at_collective=1).crash(0, at_collective=1)
        )

        def prog(comm):
            return comm.allreduce(1.0)

        with pytest.raises(RuntimeError, match="still failing after 1"):
            run_with_recovery(2, prog, fault_plan=plan, max_restarts=1)


class _InterruptAfter(EngineHook):
    """Raises after N completed subproblems — a mid-run job death."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.seen = 0

    def on_subproblem_done(self, task, payload, *, recovered):
        self.seen += 1
        if self.seen >= self.n:
            raise RuntimeError("interrupted")


class TestHookPathResume:
    """Checkpoint/resume golden determinism through the engine hooks.

    The serial estimators checkpoint via
    :class:`~repro.resilience.CheckpointHook` attached to the engine
    run; an interrupted fit resumed against the same store must be
    bitwise identical to an uninterrupted one — on *every* backend.
    """

    CFG = UoILassoConfig(
        n_lambdas=4,
        n_selection_bootstraps=3,
        n_estimation_bootstraps=2,
        random_state=10,
    )

    def test_partial_store_resumes_bitwise_on_every_backend(self, tmp_path):
        ds = make_sparse_regression(
            72, 8, n_informative=3, snr=12.0, rng=np.random.default_rng(44)
        )
        ref = UoILasso(self.CFG).fit(ds.X, ds.y)

        # Interrupt an engine run after two subproblems; cadence=1
        # makes both durable before the "crash".
        store = CheckpointStore(tmp_path / "ckpt")
        plan = LassoPlan(self.CFG, ds.X, ds.y)
        hook = CheckpointHook(CheckpointPlan(store, cadence=1))
        with pytest.raises(RuntimeError, match="interrupted"):
            run_plan(plan, SerialExecutor(), [hook, _InterruptAfter(2)])
        total = (
            self.CFG.n_selection_bootstraps + self.CFG.n_estimation_bootstraps
        )
        assert 0 < len(store) < total

        first = True
        for executor in (
            SerialExecutor(),
            MultiprocessExecutor(max_workers=2),
            SimMpiExecutor(nranks=2),
        ):
            ck = CheckpointPlan(CheckpointStore(tmp_path / "ckpt"), cadence=1)
            resumed = UoILasso(self.CFG).fit(
                ds.X, ds.y, checkpoint=ck, executor=executor
            )
            assert resumed.coef_.tobytes() == ref.coef_.tobytes()
            assert resumed.losses_.tobytes() == ref.losses_.tobytes()
            np.testing.assert_array_equal(resumed.supports_, ref.supports_)
            if first:
                # The first resume recovers exactly the pre-crash work.
                assert resumed.recovered_subproblems_ == 2
                assert resumed.completed_subproblems_ == total - 2
                first = False
            else:
                # The store is complete now: later backends fast-forward.
                assert resumed.recovered_subproblems_ == total
                assert resumed.completed_subproblems_ == 0

    def test_var_full_store_fast_forwards_cross_backend(self, tmp_path):
        sv = make_sparse_var(3, 44, rng=np.random.default_rng(45))
        vcfg = UoIVarConfig(
            order=1,
            lasso=UoILassoConfig(
                n_lambdas=4,
                n_selection_bootstraps=2,
                n_estimation_bootstraps=2,
                random_state=6,
            ),
        )
        store = CheckpointStore(tmp_path / "ckpt")
        ref = UoIVar(vcfg).fit(
            sv.series, checkpoint=CheckpointPlan(store, cadence=1)
        )
        assert ref.completed_subproblems_ == 4
        assert store_progress(store) == {
            "serial-var-sel": 2, "serial-var-est": 2, "total": 4,
        }

        resumed = UoIVar(vcfg).fit(
            sv.series,
            checkpoint=CheckpointPlan(store, cadence=1),
            executor=MultiprocessExecutor(max_workers=2),
        )
        assert resumed.recovered_subproblems_ == 4
        assert resumed.completed_subproblems_ == 0
        assert resumed.vec_coef_.tobytes() == ref.vec_coef_.tobytes()
        assert resumed.losses_.tobytes() == ref.losses_.tobytes()


class TestResilienceExperiment:
    def test_fig4_config_acceptance(self, tmp_path):
        result = resilience.run(
            fast=True, checkpoint_dir=str(tmp_path / "ckpt")
        )
        assert result.data["bitwise_identical"]
        assert result.data["n_restarts"] == 1
        assert result.data["lost_time"] > 0.0
        # Acceptance floor: >= 80% of the subproblems checkpointed
        # before the crash are reused by the restart.
        assert result.data["pre_crash_records"] > 0
        assert (
            result.data["recovered_subproblems"]
            >= 0.8 * result.data["pre_crash_records"]
        )
        report = result.render()
        assert "bitwise-identical to reference: True" in report

    def test_resume_flag_fast_forwards(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        resilience.run(fast=True, checkpoint_dir=ckpt)
        resumed = resilience.run(fast=True, checkpoint_dir=ckpt, resume=True)
        assert resumed.data["bitwise_identical"]
        assert resumed.data["n_restarts"] == 0
        assert resumed.data["completed_subproblems"] == 0
        assert resumed.data["recovery_fraction"] == 1.0

    def test_bad_crash_rank_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            resilience.run(fast=True, nranks=2, crash_rank=5)
