"""Integration tests: every experiment driver reproduces its paper claim.

These run the ``fast`` configurations; the benchmark harness runs the
full ones.  Marked module-scoped fixtures keep the slow drivers to one
execution each.
"""

import pytest

from repro.experiments import (
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    realdata,
    statcompare,
    table1,
    table2,
)
from repro.experiments.base import ExperimentResult


@pytest.fixture(scope="module")
def results():
    """Run every driver once (fast mode)."""
    return {
        name: mod.run(fast=True)
        for name, mod in [
            ("table1", table1),
            ("table2", table2),
            ("fig2", fig2),
            ("fig3", fig3),
            ("fig4", fig4),
            ("fig5", fig5),
            ("fig6", fig6),
            ("fig7", fig7),
            ("fig8", fig8),
            ("fig9", fig9),
            ("fig10", fig10),
            ("realdata", realdata),
            ("statcompare", statcompare),
        ]
    }


class TestDriversRender:
    def test_all_return_experiment_results(self, results):
        for name, res in results.items():
            assert isinstance(res, ExperimentResult), name
            assert res.name == name
            assert res.report
            assert res.paper_reference
            rendered = res.render()
            assert rendered.startswith(f"=== {name}")
            assert "[paper]" in rendered


class TestTable1(object):
    def test_core_counts_match_paper(self, results):
        data = results["table1"].data
        for gb, (lc, vc) in data["weak"].items():
            assert lc == data["paper_lasso"][gb]
            assert vc == data["paper_var"][gb]


class TestTable2:
    def test_randomized_beats_conventional_everywhere(self, results):
        model = results["table2"].data["model"]
        for gb, (cr, cd, rr, rd) in model.items():
            assert rr + rd < cr + cd, f"{gb}GB"

    def test_read_times_within_2x_of_paper(self, results):
        model = results["table2"].data["model"]
        paper = results["table2"].data["paper"]
        for gb in model:
            assert model[gb][0] == pytest.approx(paper[gb][0], rel=1.0)

    def test_functional_delivery_correct(self, results):
        func = results["table2"].data["functional"]
        assert func["randomized_correct"]
        assert func["conventional_correct"]


class TestSingleNodeFigs:
    def test_fig2_computation_dominates(self, results):
        assert results["fig2"].data["computation_share"] > 0.85

    def test_fig2_kernels_memory_bound(self, results):
        assert all(
            v == "memory-bound" for v in results["fig2"].data["roofline"].values()
        )

    def test_fig2_functional_compute_dominant(self, results):
        fb = results["fig2"].data["functional"]
        total = sum(fb.values())
        assert fb["computation"] / total > 0.5

    def test_fig7_computation_dominates(self, results):
        assert results["fig7"].data["computation_share"] > 0.85

    def test_fig7_sparsity_law(self, results):
        assert results["fig7"].data["sparsity_95"] == pytest.approx(0.9894, abs=1e-3)


class TestParallelismFigs:
    def test_fig3_grid_configs_close(self, results):
        """Paper: runtimes similar across grid shapes at each size."""
        totals = results["fig3"].data["model_totals"]
        for gb, cores in fig3.PAPER_SIZES:
            vals = [totals[(gb, pb, plam)] for pb, plam in fig3.PAPER_GRIDS]
            assert max(vals) / min(vals) < 1.25, gb

    def test_fig3_functional_grids_agree(self, results):
        func = results["fig3"].data["functional"]
        assert len(func) == 4

    def test_fig8_distribution_monotone_in_plam(self, results):
        assert results["fig8"].data["monotone_in_plam"]


class TestScalingFigs:
    def test_fig4_crossover_exists(self, results):
        data = results["fig4"].data
        assert data["crossover_gb"] in (2048, 4096, 8192)

    def test_fig5_variability_positive(self, results):
        series = results["fig5"].data["series"]
        for gb, (tmin, tmax) in series.items():
            assert tmax > tmin > 0

    def test_fig6_superlinear_at_biggest(self, results):
        sup = results["fig6"].data["superlinear"]
        assert sup[139264]

    def test_fig9_crossover_near_2tb(self, results):
        assert results["fig9"].data["crossover_gb"] in (2048, 4096)

    def test_fig10_distribution_growing(self, results):
        assert results["fig10"].data["distribution_growing"]


class TestRealData:
    def test_distribution_anchors(self, results):
        data = results["realdata"].data
        assert data["finance_model"]["distribution"] == pytest.approx(
            data["paper_finance"][2], rel=0.1
        )
        assert data["neuro_model"]["distribution"] == pytest.approx(
            data["paper_neuro"][2], rel=0.1
        )

    def test_neuro_communication_dominates_computation(self, results):
        """Paper neuro run: 1,598.7 s comm vs 96.9 s compute."""
        m = results["realdata"].data["neuro_model"]
        assert m["communication"] > m["computation"]

    def test_functional_fits_sparse(self, results):
        data = results["realdata"].data
        assert data["finance_summary"]["density"] < 0.5
        assert data["neuro_summary"]["density"] < 0.5


class TestStatCompare:
    def test_uoi_beats_lasso_on_false_positives(self, results):
        s = results["statcompare"].data["summary"]
        assert s["UoI_LASSO"]["precision"] >= s["LASSO"]["precision"]
        assert s["UoI_LASSO"]["fp"] <= s["LASSO"]["fp"]
        assert s["UoI_LASSO"]["fp"] <= s["CV-LASSO"]["fp"]

    def test_uoi_low_bias(self, results):
        s = results["statcompare"].data["summary"]
        assert abs(s["UoI_LASSO"]["bias"]) < abs(s["LASSO"]["bias"])

    def test_all_methods_reported(self, results):
        s = results["statcompare"].data["summary"]
        assert set(s) == {"UoI_LASSO", "LASSO", "CV-LASSO", "MCP", "SCAD", "Ridge"}

    def test_ridge_never_sparse_lasso_family_recalls(self, results):
        s = results["statcompare"].data["summary"]
        assert s["UoI_LASSO"]["recall"] >= 0.8


@pytest.mark.slow
class TestFig11:
    def test_sparse_graph(self):
        res = fig11.run(fast=True)
        summary = res.data["summary"]
        # Paper: quite sparse — well under 10% of possible edges.
        assert summary["edges"] < 0.1 * summary["possible_edges"]
        assert summary["edges"] > 0
        assert res.data["graph_nodes"] == summary["nodes"]


class TestFig8Functional:
    def test_plam_parallel_distribution_heavier(self, results):
        fd = results["fig8"].data["functional_distribution"]
        assert fd["pb"] <= fd["plam"]
