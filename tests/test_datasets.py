"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import (
    first_differences,
    make_sparse_regression,
    make_sparse_var,
    make_spike_counts,
    make_stock_panel,
    random_sparse_coefs,
    sp50_tickers,
    synthetic_tickers,
    weekly_closes,
)
from repro.datasets.regression import rows_for_gigabytes, PAPER_LASSO_FEATURES
from repro.datasets.var_synthetic import features_for_gigabytes
from repro.var import spectral_radius


class TestSparseRegression:
    def test_shapes_and_support(self):
        ds = make_sparse_regression(50, 20, n_informative=4,
                                    rng=np.random.default_rng(0))
        assert ds.X.shape == (50, 20)
        assert ds.y.shape == (50,)
        assert ds.support.sum() == 4
        np.testing.assert_array_equal(ds.support, ds.beta != 0)

    @given(snr=st.floats(0.5, 100.0), seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_snr_respected(self, snr, seed):
        ds = make_sparse_regression(
            4000, 10, n_informative=3, snr=snr, rng=np.random.default_rng(seed)
        )
        signal_var = (ds.X @ ds.beta).var()
        assert signal_var / ds.noise_std**2 == pytest.approx(snr, rel=0.2)

    def test_default_informative_count(self):
        ds = make_sparse_regression(10, 100, rng=np.random.default_rng(1))
        assert ds.support.sum() == 5

    def test_signs_alternate(self):
        ds = make_sparse_regression(10, 50, n_informative=6,
                                    rng=np.random.default_rng(2))
        vals = ds.beta[ds.support]
        assert (vals > 0).any() and (vals < 0).any()

    def test_rows_for_gigabytes(self):
        # 16 GB of float64 at 20,101 features.
        n = rows_for_gigabytes(16)
        assert n * PAPER_LASSO_FEATURES * 8 == pytest.approx(16 * 1024**3, rel=1e-3)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            make_sparse_regression(0, 5, rng=rng)
        with pytest.raises(ValueError):
            make_sparse_regression(5, 5, snr=0, rng=rng)
        with pytest.raises(ValueError):
            make_sparse_regression(5, 5, n_informative=9, rng=rng)
        with pytest.raises(ValueError):
            rows_for_gigabytes(0)


class TestSparseVar:
    @given(seed=st.integers(0, 50), p=st.integers(2, 12), d=st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_generated_process_is_stable(self, seed, p, d):
        coefs = random_sparse_coefs(p, d, rng=np.random.default_rng(seed))
        assert spectral_radius(coefs) < 1.0

    def test_target_radius_hit_var1(self):
        coefs = random_sparse_coefs(
            8, 1, target_radius=0.6, rng=np.random.default_rng(3)
        )
        assert spectral_radius(coefs) == pytest.approx(0.6, rel=1e-6)

    def test_density_controls_edges(self):
        rng = np.random.default_rng(4)
        dense = random_sparse_coefs(20, 1, density=0.5, rng=rng)
        sparse = random_sparse_coefs(20, 1, density=0.05,
                                     rng=np.random.default_rng(4))
        off = ~np.eye(20, dtype=bool)
        assert (dense[0][off] != 0).sum() > (sparse[0][off] != 0).sum()

    def test_make_sparse_var_defaults(self):
        sv = make_sparse_var(10, rng=np.random.default_rng(5))
        assert sv.series.shape == (20, 10)  # N = 2p convention
        assert sv.support.shape == (1, 10, 10)
        assert sv.process.stable()

    def test_features_for_gigabytes_hits_paper_anchors(self):
        # Paper: 128 GB -> 356 features; 8 TB -> 1,000 features.
        assert abs(features_for_gigabytes(128) - 356) <= 10
        assert abs(features_for_gigabytes(8192) - 1000) <= 30

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_sparse_coefs(0, 1, rng=rng)
        with pytest.raises(ValueError):
            random_sparse_coefs(5, 1, target_radius=1.5, rng=rng)
        with pytest.raises(ValueError):
            make_sparse_var(5, n_samples=1, rng=rng)
        with pytest.raises(ValueError):
            features_for_gigabytes(-1)


class TestStockPanel:
    def test_shapes_and_positive_prices(self):
        panel = make_stock_panel(20, 100, rng=np.random.default_rng(6))
        assert panel.prices.shape == (100, 20)
        assert np.all(panel.prices > 0)
        assert len(panel.tickers) == 20
        assert panel.lead_lag.shape == (20, 20)

    def test_lead_lag_is_sparse_off_diagonal(self):
        panel = make_stock_panel(30, 50, rng=np.random.default_rng(7))
        assert np.all(np.diag(panel.lead_lag) == 0)
        assert 0 < (panel.lead_lag != 0).sum() < 30 * 5

    def test_weekly_closes_picks_last_day(self):
        prices = np.arange(50.0).reshape(10, 5)
        # 10 days x 5 companies; 2 weeks of 5 days.
        w = weekly_closes(prices)
        np.testing.assert_array_equal(w[0], prices[4])
        np.testing.assert_array_equal(w[1], prices[9])

    def test_first_differences(self):
        s = np.array([[1.0, 2.0], [4.0, 6.0], [9.0, 12.0]])
        np.testing.assert_array_equal(
            first_differences(s), [[3.0, 4.0], [5.0, 6.0]]
        )

    def test_paper_shapes(self):
        """Fig. 11: 2 years of 50 companies -> 104 weekly closes -> 103 diffs."""
        panel = make_stock_panel(50, 520, rng=np.random.default_rng(8))
        diffs = first_differences(weekly_closes(panel.prices))
        assert diffs.shape == (103, 50)

    def test_tickers(self):
        assert len(sp50_tickers()) == 50
        assert synthetic_tickers(3) == ["AAPL", "MSFT", "GOOG"]
        t470 = synthetic_tickers(470)
        assert len(t470) == len(set(t470)) == 470

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            make_stock_panel(1, 50, rng=rng)
        with pytest.raises(ValueError):
            make_stock_panel(5, 5, rng=rng)
        with pytest.raises(ValueError):
            make_stock_panel(5, 50, lag_days=0, rng=rng)
        with pytest.raises(ValueError):
            weekly_closes(np.ones((3, 2)), days_per_week=5)
        with pytest.raises(ValueError):
            first_differences(np.ones((1, 2)))


class TestSpikeCounts:
    def test_shapes_and_nonnegative_integers(self):
        panel = make_spike_counts(12, 200, rng=np.random.default_rng(9))
        assert panel.counts.shape == (200, 12)
        assert panel.counts.dtype.kind == "i"
        assert panel.counts.min() >= 0

    def test_regions_split(self):
        panel = make_spike_counts(10, 50, rng=np.random.default_rng(10))
        assert panel.regions.count("M1") == 5
        assert panel.regions.count("S1") == 5

    def test_rates_positive_and_coupled(self):
        panel = make_spike_counts(8, 300, rng=np.random.default_rng(11))
        assert np.all(panel.rates > 0)
        assert len(panel.coefs) == 1
        assert (panel.coefs[0] != 0).any()

    def test_mean_rate_near_base(self):
        panel = make_spike_counts(
            6, 3000, base_rate=3.0, rng=np.random.default_rng(12)
        )
        assert panel.counts.mean() == pytest.approx(3.0, rel=0.5)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            make_spike_counts(1, 50, rng=rng)
        with pytest.raises(ValueError):
            make_spike_counts(5, 0, rng=rng)
        with pytest.raises(ValueError):
            make_spike_counts(5, 50, base_rate=0.0, rng=rng)


class TestDatasetIO:
    def test_regression_file_layout(self):
        from repro.datasets import (
            INPUT_DATASET,
            TRUTH_DATASET,
            make_regression_file,
        )

        file, ds = make_regression_file(
            40, 6, rng=np.random.default_rng(0), path="/t1.h5"
        )
        data = file.dataset(INPUT_DATASET).data
        assert data.shape == (40, 7)
        np.testing.assert_array_equal(data[:, 0], ds.y)
        np.testing.assert_array_equal(data[:, 1:], ds.X)
        np.testing.assert_array_equal(
            file.dataset(TRUTH_DATASET).data[0], ds.beta
        )

    def test_var_file_layout(self):
        from repro.datasets import SERIES_DATASET, make_var_file

        file, sv = make_var_file(
            4, 30, order=2, rng=np.random.default_rng(1), path="/t2.h5"
        )
        np.testing.assert_array_equal(
            file.dataset(SERIES_DATASET).data, sv.series
        )
        np.testing.assert_array_equal(
            file.dataset("truth/A1").data, sv.process.coefs[0]
        )
        np.testing.assert_array_equal(
            file.dataset("truth/A2").data, sv.process.coefs[1]
        )

    def test_small_files_unstriped(self):
        from repro.datasets import make_regression_file

        file, _ = make_regression_file(
            20, 3, rng=np.random.default_rng(2), path="/t3.h5"
        )
        assert file.stripe_count == 1  # megabytes -> unstriped (site policy)

    def test_feeds_distributed_driver(self):
        from repro.core import UoILassoConfig
        from repro.core.parallel import distributed_uoi_lasso
        from repro.datasets import INPUT_DATASET, make_regression_file
        from repro.simmpi import LAPTOP, run_spmd

        file, ds = make_regression_file(
            60, 8, n_informative=2, rng=np.random.default_rng(3), path="/t4.h5"
        )
        cfg = UoILassoConfig(
            n_lambdas=5, n_selection_bootstraps=3, n_estimation_bootstraps=2,
            random_state=3,
        )
        res = run_spmd(
            2,
            lambda comm: distributed_uoi_lasso(comm, file, INPUT_DATASET, cfg),
            machine=LAPTOP,
        )
        assert res.values[0].coef.shape == (8,)
