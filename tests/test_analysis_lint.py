"""Tests for the static SPMD linter (``repro.analysis.linter``)."""

import textwrap

from repro.analysis import (
    ERROR,
    WARNING,
    Finding,
    findings_from_json,
    findings_to_json,
    format_findings,
    lint_paths,
    lint_source,
)
from repro.analysis.rules import RULES, get_rule


def lint(code: str, filename: str = "prog.py"):
    return lint_source(textwrap.dedent(code), filename)


class TestRankConditionalCollective:
    def test_collective_in_rank_branch_flagged(self):
        findings = lint(
            """\
            def prog(comm):
                if comm.rank == 0:
                    comm.allreduce(1.0)
            """
        )
        assert [f.rule for f in findings] == ["SPMD001"]
        assert findings[0].line == 3
        assert findings[0].severity == ERROR
        assert findings[0].location == "prog.py:3"

    def test_collective_in_else_branch_flagged(self):
        findings = lint(
            """\
            def prog(comm):
                if comm.rank == 0:
                    pass
                else:
                    comm.barrier()
            """
        )
        assert [f.rule for f in findings] == ["SPMD001"]
        assert findings[0].line == 5

    def test_unconditional_collective_clean(self):
        findings = lint(
            """\
            def prog(comm):
                comm.allreduce(1.0)
                comm.barrier()
            """
        )
        assert findings == []

    def test_root_guarded_payload_prep_clean(self):
        # The canonical safe pattern: the *argument* is rank-dependent,
        # the collective itself is not.
        findings = lint(
            """\
            def prog(comm):
                data = load() if comm.rank == 0 else None
                comm.bcast(data, root=0)
            """
        )
        assert findings == []

    def test_non_comm_receiver_not_flagged(self):
        findings = lint(
            """\
            def prog(comm, queue):
                if comm.rank == 0:
                    queue.gather(1)
            """
        )
        assert findings == []

    def test_window_fence_in_rank_branch_flagged(self):
        findings = lint(
            """\
            def prog(comm, win):
                if comm.rank == 0:
                    win.fence()
            """
        )
        assert [f.rule for f in findings] == ["SPMD001"]


class TestGlobalRng:
    def test_np_random_function_flagged(self):
        findings = lint(
            """\
            import numpy as np

            def draw():
                return np.random.rand(4)
            """
        )
        assert [f.rule for f in findings] == ["SPMD002"]
        assert findings[0].line == 4

    def test_np_random_seed_flagged(self):
        findings = lint(
            """\
            import numpy as np
            np.random.seed(0)
            """
        )
        assert [f.rule for f in findings] == ["SPMD002"]

    def test_default_rng_clean(self):
        findings = lint(
            """\
            import numpy as np

            def draw(seed):
                rng = np.random.default_rng(seed)
                return rng.normal(size=4)
            """
        )
        assert findings == []

    def test_generator_classes_clean(self):
        findings = lint(
            """\
            import numpy as np

            gen = np.random.Generator(np.random.PCG64(3))
            ss = np.random.SeedSequence(7)
            """
        )
        assert findings == []


class TestSpanContextManager:
    def test_bare_span_statement_flagged(self):
        findings = lint(
            """\
            def work(rec):
                rec.span("solve")
            """
        )
        assert [f.rule for f in findings] == ["SPMD003"]
        assert findings[0].severity == WARNING

    def test_with_span_clean(self):
        findings = lint(
            """\
            def work(rec):
                with rec.span("solve"):
                    pass
            """
        )
        assert findings == []

    def test_assigned_span_clean(self):
        # Stored handles are assumed to be entered/exited elsewhere.
        findings = lint(
            """\
            def work(rec):
                s = rec.span("solve")
                return s
            """
        )
        assert findings == []


class TestRmaBufferMutation:
    def test_subscript_write_flagged(self):
        findings = lint(
            """\
            def prog(win):
                block = win.get(1, slice(0, 4))
                block[0] = 99.0
            """
        )
        assert [f.rule for f in findings] == ["SPMD004"]
        assert findings[0].line == 3

    def test_augassign_flagged(self):
        findings = lint(
            """\
            def prog(win):
                block = win.get(1, slice(0, 4))
                block += 1.0
            """
        )
        assert [f.rule for f in findings] == ["SPMD004"]

    def test_single_finding_per_mutation(self):
        # Regression: mutations must not be double-reported when the
        # function body is also reachable from the module scope walk.
        findings = lint(
            """\
            def prog(win):
                block = win.get(1, slice(0, 4))
                block[0] = 99.0
            """
        )
        assert len(findings) == 1

    def test_rebinding_clears_taint(self):
        findings = lint(
            """\
            def prog(win):
                block = win.get(1, slice(0, 4))
                block = block.copy()
                block[0] = 99.0
            """
        )
        assert findings == []

    def test_read_only_use_clean(self):
        findings = lint(
            """\
            def prog(win):
                block = win.get(1, slice(0, 4))
                return block.sum()
            """
        )
        assert findings == []


class TestSuppressions:
    def test_targeted_suppression(self):
        findings = lint(
            """\
            def prog(comm):
                if comm.rank == 0:
                    comm.barrier()  # repro: ignore[SPMD001]
            """
        )
        assert findings == []

    def test_bare_suppression_silences_all_rules(self):
        findings = lint(
            """\
            import numpy as np
            np.random.seed(0)  # repro: ignore
            """
        )
        assert findings == []

    def test_suppressing_other_rule_does_not_silence(self):
        findings = lint(
            """\
            def prog(comm):
                if comm.rank == 0:
                    comm.barrier()  # repro: ignore[SPMD002]
            """
        )
        # The real finding still fires, and the mismatched directive is
        # itself reported stale (it suppressed nothing).
        assert [f.rule for f in findings] == ["SPMD001", "SUP001"]


class TestSuppressionEdgeCases:
    def test_multi_rule_comma_list(self):
        findings = lint(
            """\
            import numpy as np

            def prog(comm):
                if comm.rank == 0:
                    comm.allreduce(np.random.rand(4))  # repro: ignore[SPMD001,SPMD002]
            """
        )
        assert findings == []

    def test_multi_rule_list_with_spaces(self):
        findings = lint(
            """\
            def prog(comm):
                if comm.rank == 0:
                    comm.barrier()  # repro: ignore[SPMD002, SPMD001]
            """
        )
        # SPMD001 matched; the unused SPMD002 half is reported stale.
        assert [f.rule for f in findings] == ["SUP001"]
        assert findings[0].context["suppressed_rule"] == "SPMD002"

    def test_decorated_def_suppression(self):
        findings = lint(
            """\
            import numpy as np

            def deco(f):
                return f

            @deco
            def draw():
                return np.random.rand(4)  # repro: ignore[SPMD002]
            """
        )
        assert findings == []

    def test_stale_directive_reported_with_location(self):
        findings = lint(
            """\
            def prog(comm):
                comm.barrier()  # repro: ignore[SPMD001]
            """
        )
        # An unconditional barrier is clean: the directive is dead.
        assert [f.rule for f in findings] == ["SUP001"]
        assert findings[0].line == 2
        assert findings[0].severity == WARNING
        assert "SPMD001" in findings[0].message

    def test_stale_multi_rule_reports_each_rule(self):
        findings = lint(
            """\
            def prog(comm):
                if comm.rank == 0:
                    comm.barrier()  # repro: ignore[SPMD002,SPMD003]
            """
        )
        assert [f.rule for f in findings] == ["SPMD001", "SUP001", "SUP001"]
        stale = sorted(f.context["suppressed_rule"] for f in findings[1:])
        assert stale == ["SPMD002", "SPMD003"]

    def test_bare_ignore_never_stale(self):
        findings = lint(
            """\
            def prog(comm):
                comm.barrier()  # repro: ignore
            """
        )
        assert findings == []

    def test_other_family_directive_not_this_pass_to_report(self):
        # A SHAPE-family directive is the SHAPE pass's to account for:
        # the SPMD linter must not call it stale.
        findings = lint(
            """\
            def prog(comm):
                comm.barrier()  # repro: ignore[SHAPE101]
            """
        )
        assert findings == []

    def test_directive_text_in_docstring_not_live(self):
        # Tokenize-based comment detection: directive *text* quoted in
        # a docstring is neither a live suppression nor a stale one.
        findings = lint(
            '''\
            def prog(comm):
                """Suppress with ``# repro: ignore[SPMD001]``."""
                if comm.rank == 0:
                    comm.allreduce(1.0)
            '''
        )
        assert [f.rule for f in findings] == ["SPMD001"]


class TestRulesAndSerialization:
    def test_every_rule_has_metadata(self):
        for rule_id, rule in RULES.items():
            assert rule.id == rule_id
            assert rule.summary
            assert rule.rationale
            assert rule.severity in ("error", "warning", "info")
        assert get_rule("SPMD001").name == "rank-conditional-collective"

    def test_findings_json_roundtrip(self):
        findings = lint(
            """\
            def prog(comm):
                if comm.rank == 0:
                    comm.allreduce(1.0)
            """
        )
        doc = findings_to_json(findings)
        back = findings_from_json(doc)
        assert back == findings
        assert isinstance(back[0], Finding)

    def test_format_findings_human_table(self):
        findings = lint(
            """\
            def prog(comm):
                if comm.rank == 0:
                    comm.allreduce(1.0)
            """
        )
        text = format_findings(findings)
        assert "SPMD001" in text
        assert "prog.py:3" in text
        assert "none" in format_findings([])


class TestRepoGate:
    def test_installed_package_lints_clean(self):
        # The acceptance gate: the shipped library must have zero
        # static findings.
        assert lint_paths() == []
