"""Tests for repro.linalg.soft_threshold (prox operators)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.linalg import soft_threshold, mcp_threshold, scad_threshold

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
kappas = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)


class TestSoftThreshold:
    def test_zero_kappa_is_identity(self):
        x = np.array([-2.0, -0.5, 0.0, 0.7, 3.0])
        np.testing.assert_array_equal(soft_threshold(x, 0.0), x)

    def test_known_values(self):
        np.testing.assert_allclose(
            soft_threshold(np.array([3.0, -3.0, 0.5, -0.5]), 1.0),
            [2.0, -2.0, 0.0, 0.0],
        )

    def test_scalar_input(self):
        assert soft_threshold(2.5, 1.0) == pytest.approx(1.5)

    def test_negative_kappa_rejected(self):
        with pytest.raises(ValueError, match="kappa"):
            soft_threshold(np.ones(3), -0.1)

    @given(x=finite_floats, kappa=kappas)
    def test_shrinks_toward_zero(self, x, kappa):
        out = float(soft_threshold(x, kappa))
        assert abs(out) <= abs(x) + 1e-12
        # Sign is preserved or output is zero.
        assert out == 0.0 or np.sign(out) == np.sign(x)

    @given(x=finite_floats, kappa=kappas)
    def test_exact_shrinkage_amount(self, x, kappa):
        out = float(soft_threshold(x, kappa))
        if abs(x) <= kappa:
            assert out == 0.0
        else:
            assert out == pytest.approx(np.sign(x) * (abs(x) - kappa), rel=1e-12)

    @given(x=finite_floats, kappa=kappas)
    def test_is_prox_of_l1(self, x, kappa):
        """S_kappa(x) minimizes 0.5 (b - x)^2 + kappa |b| over a grid."""
        out = float(soft_threshold(x, kappa))

        def obj(b):
            return 0.5 * (b - x) ** 2 + kappa * abs(b)

        for candidate in (out + 1e-3, out - 1e-3, 0.0, x):
            assert obj(out) <= obj(candidate) + 1e-6 * max(1.0, abs(x))

    @given(
        x=st.lists(finite_floats, min_size=1, max_size=20),
        kappa=kappas,
    )
    def test_nonexpansive(self, x, kappa):
        """The prox is 1-Lipschitz: |S(a)-S(b)| <= |a-b| elementwise."""
        a = np.array(x)
        b = a + 0.5
        assert np.all(
            np.abs(soft_threshold(a, kappa) - soft_threshold(b, kappa))
            <= np.abs(a - b) + 1e-12
        )


class TestMcpThreshold:
    def test_large_values_unbiased(self):
        # Beyond gamma*lam the MCP applies no shrinkage.
        x = np.array([10.0, -10.0])
        np.testing.assert_array_equal(mcp_threshold(x, 1.0, gamma=3.0), x)

    def test_small_values_zeroed(self):
        assert mcp_threshold(0.5, 1.0, gamma=3.0) == 0.0

    def test_matches_rescaled_soft_in_middle(self):
        x, lam, gamma = 2.0, 1.0, 3.0
        expected = (x - lam) / (1 - 1 / gamma)
        assert mcp_threshold(x, lam, gamma) == pytest.approx(expected)

    def test_gamma_validation(self):
        with pytest.raises(ValueError, match="gamma"):
            mcp_threshold(1.0, 1.0, gamma=1.0)

    def test_lam_validation(self):
        with pytest.raises(ValueError, match="lam"):
            mcp_threshold(1.0, -1.0)

    @given(x=finite_floats, lam=st.floats(min_value=0, max_value=100))
    def test_less_biased_than_soft(self, x, lam):
        """|MCP(x)| >= |S_lam(x)|: MCP shrinks no more than LASSO."""
        m = float(mcp_threshold(x, lam, gamma=3.0))
        s = float(soft_threshold(x, lam))
        assert abs(m) >= abs(s) - 1e-9

    @given(x=finite_floats)
    def test_zero_lam_identity(self, x):
        assert mcp_threshold(x, 0.0) == pytest.approx(x)


class TestScadThreshold:
    def test_large_values_unbiased(self):
        x = np.array([10.0, -10.0])
        np.testing.assert_array_equal(scad_threshold(x, 1.0, a=3.7), x)

    def test_small_values_soft(self):
        # |x| <= 2 lam: plain soft threshold.
        assert scad_threshold(1.5, 1.0) == pytest.approx(0.5)
        assert scad_threshold(0.9, 1.0) == 0.0

    def test_a_validation(self):
        with pytest.raises(ValueError, match="a"):
            scad_threshold(1.0, 1.0, a=2.0)

    def test_lam_validation(self):
        with pytest.raises(ValueError, match="lam"):
            scad_threshold(1.0, -0.5)

    @given(x=finite_floats, lam=st.floats(min_value=0, max_value=100))
    def test_less_biased_than_soft(self, x, lam):
        s = float(soft_threshold(x, lam))
        sc = float(scad_threshold(x, lam))
        assert abs(sc) >= abs(s) - 1e-9

    @given(x=finite_floats, lam=st.floats(min_value=1e-3, max_value=100))
    def test_continuity_at_regime_boundaries(self, x, lam):
        """SCAD is continuous; check near the 2*lam and a*lam knots."""
        a = 3.7
        for knot in (2 * lam, a * lam):
            lo = float(scad_threshold(knot - 1e-9 * lam, lam, a=a))
            hi = float(scad_threshold(knot + 1e-9 * lam, lam, a=a))
            assert lo == pytest.approx(hi, abs=1e-5 * lam)
