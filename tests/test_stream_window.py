"""SlidingLagWindow: incremental lag matrices == full rebuild, always.

The property the whole streaming subsystem leans on: at *every* point
of *any* append/evict history, the window's ``(Y, X)`` is bitwise what
``build_lag_matrices`` builds from the same raw samples, and the
incrementally maintained Gram/cross products match the rebuilt ones to
tolerance.  The sweep below runs it over dimensions, orders, window
capacities and eviction patterns.
"""

import numpy as np
import pytest

from repro.stream import SlidingLagWindow
from repro.var.lag import build_lag_matrices


def _ticks(n, p, seed=0):
    return np.random.default_rng(seed).standard_normal((n, p))


# ---------------------------------------------------------------------------
# the property sweep
# ---------------------------------------------------------------------------
def _evict_schedule(pattern, rng):
    """Evictions to perform after each append, by pattern name."""
    if pattern == "append_only":
        return lambda i: 0
    if pattern == "burst":
        # Every 7th append, manually evict up to 3 extra samples.
        return lambda i: 3 if i % 7 == 6 else 0
    if pattern == "random":
        return lambda i: int(rng.integers(0, 3))
    raise AssertionError(pattern)


@pytest.mark.parametrize("p", [1, 3, 5])
@pytest.mark.parametrize("order", [1, 2, 3])
@pytest.mark.parametrize("capacity", [None, 9, 24])
@pytest.mark.parametrize("pattern", ["append_only", "burst", "random"])
def test_matches_rebuild_under_any_history(p, order, capacity, pattern):
    capacity = order + 1 if capacity is None else capacity
    if capacity <= order:
        pytest.skip("capacity must exceed order")
    rng = np.random.default_rng(p * 100 + order * 10 + capacity)
    win = SlidingLagWindow(p, order, capacity)
    evictions = _evict_schedule(pattern, rng)
    for i, row in enumerate(_ticks(3 * capacity + 5, p, seed=order)):
        win.append(row)
        for _ in range(min(evictions(i), max(0, win.n_samples - 1))):
            win.evict()
        # Invariants hold at every step, not just at the end.
        assert win.n_samples <= capacity
        if win.ready:
            win.check_against_rebuild()
    assert win.total_appended == 3 * capacity + 5
    if pattern == "append_only":
        assert win.total_evicted == win.total_appended - win.n_samples


def test_matrices_bitwise_and_products_close():
    p, order, cap = 4, 2, 12
    win = SlidingLagWindow(p, order, cap)
    series = _ticks(40, p, seed=7)
    win.extend(series)
    Y, X = win.matrices()
    Yr, Xr = build_lag_matrices(series[-cap:], order)
    assert np.array_equal(Y, Yr) and np.array_equal(X, Xr)
    assert np.allclose(win.gram(), Xr.T @ Xr, atol=1e-8)
    assert np.allclose(win.cross(), Xr.T @ Yr, atol=1e-8)
    assert win.lambda_max_preview() == pytest.approx(
        2.0 * float(np.max(np.abs(win.cross())))
    )


def test_intercept_column_matches_rebuild():
    win = SlidingLagWindow(3, 2, 10, add_intercept=True)
    win.extend(_ticks(25, 3, seed=1))
    Y, X = win.matrices()
    Yr, Xr = build_lag_matrices(win.series(), 2, add_intercept=True)
    assert np.array_equal(Y, Yr) and np.array_equal(X, Xr)
    assert np.all(X[:, 0] == 1.0)


def test_rebuild_products_zeroes_drift():
    win = SlidingLagWindow(2, 1, 6)
    win.extend(_ticks(50, 2, seed=3))
    win._gram += 1e-6  # simulate accumulated float drift
    win.rebuild_products()
    Y, X = win.matrices()
    assert np.array_equal(win.gram(), X.T @ X)
    assert np.array_equal(win.cross(), X.T @ Y)


# ---------------------------------------------------------------------------
# edges and errors
# ---------------------------------------------------------------------------
def test_not_ready_until_order_exceeded():
    win = SlidingLagWindow(2, 3, 8)
    for row in _ticks(3, 2):
        win.append(row)
        assert not win.ready
    with pytest.raises(ValueError, match="no lag rows"):
        win.matrices()
    with pytest.raises(ValueError, match="no lag rows"):
        win.lambda_max_preview()
    win.append(np.zeros(2))
    assert win.ready and len(win) == 1


def test_validation_errors():
    with pytest.raises(ValueError, match="capacity must exceed order"):
        SlidingLagWindow(2, 3, 3)
    with pytest.raises(ValueError, match="p must be"):
        SlidingLagWindow(0, 1, 4)
    with pytest.raises(ValueError, match="order must be"):
        SlidingLagWindow(2, 0, 4)
    win = SlidingLagWindow(2, 1, 4)
    with pytest.raises(ValueError, match="shape"):
        win.append(np.zeros(3))
    with pytest.raises(ValueError, match="empty"):
        win.evict()


def test_series_round_trips_ring_wrap():
    win = SlidingLagWindow(2, 1, 5)
    series = _ticks(13, 2, seed=9)
    win.extend(series)
    assert np.array_equal(win.series(), series[-5:])
