"""Tests for the three data-distribution strategies."""

import numpy as np
import pytest
import scipy.sparse
from hypothesis import given, settings, strategies as st

from repro.distribution import (
    ConventionalDistributor,
    DistributedKron,
    RandomizedDistributor,
)
from repro.distribution.kron_dist import lifted_coords, lifted_row_block
from repro.distribution.randomized import block_bounds
from repro.linalg.kron import identity_kron, vec
from repro.pfs import SimH5File
from repro.simmpi import LAPTOP, run_spmd, SpmdError


class TestBlockBounds:
    @given(n=st.integers(0, 500), size=st.integers(1, 32))
    def test_partition_covers_exactly(self, n, size):
        """Bounds tile [0, n) without gaps or overlaps."""
        cursor = 0
        for rank in range(size):
            lo, hi = block_bounds(n, size, rank)
            assert lo == cursor
            assert hi >= lo
            cursor = hi
        assert cursor == n

    @given(n=st.integers(1, 500), size=st.integers(1, 32))
    def test_balanced_within_one(self, n, size):
        sizes = [
            block_bounds(n, size, r)[1] - block_bounds(n, size, r)[0]
            for r in range(size)
        ]
        assert max(sizes) - min(sizes) <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            block_bounds(-1, 2, 0)
        with pytest.raises(ValueError):
            block_bounds(5, 2, 2)


def _make_file(rng, n=48, p=5):
    data = rng.standard_normal((n, p))
    f = SimH5File("/dist.h5")
    f.create_dataset("data", data)
    return f, data


class TestRandomizedDistributor:
    def test_delivers_exact_bootstrap_rows(self):
        rng = np.random.default_rng(0)
        f, data = _make_file(rng)
        boot = rng.integers(0, 48, size=60)

        def prog(comm):
            d = RandomizedDistributor(comm, f, "data")
            out = d.sample(boot)
            d.close()
            return out

        res = run_spmd(4, prog, machine=LAPTOP)
        got = np.concatenate(res.values)
        np.testing.assert_array_equal(got, data[boot])

    def test_multiple_samples_reuse_tier1(self):
        """The file is read once; every sample() is pure Tier-2."""
        rng = np.random.default_rng(1)
        f, data = _make_file(rng)
        boots = [rng.integers(0, 48, size=48) for _ in range(3)]

        def prog(comm):
            d = RandomizedDistributor(comm, f, "data")
            outs = [d.sample(b) for b in boots]
            d.close()
            return outs

        res = run_spmd(3, prog, machine=LAPTOP)
        for i, b in enumerate(boots):
            got = np.concatenate([v[i] for v in res.values])
            np.testing.assert_array_equal(got, data[b])
        assert f.open_count == 1  # single Tier-1 read

    def test_subcomm_striping(self):
        rng = np.random.default_rng(2)
        f, data = _make_file(rng)
        boot = rng.integers(0, 48, size=40)

        def prog(comm):
            d = RandomizedDistributor(comm, f, "data")
            sub = comm.split(comm.rank // 2)  # two cells of 2 ranks
            out = d.sample(boot, subcomm=sub)
            d.barrier()
            return comm.rank // 2, sub.rank, out

        res = run_spmd(4, prog, machine=LAPTOP)
        # Each cell independently reassembles the full bootstrap.
        for cell in (0, 1):
            parts = [v[2] for v in res.values if v[0] == cell]
            np.testing.assert_array_equal(np.concatenate(parts), data[boot])

    def test_owner_of(self):
        rng = np.random.default_rng(3)
        f, _ = _make_file(rng, n=10)

        def prog(comm):
            d = RandomizedDistributor(comm, f, "data")
            owners = [d.owner_of(r) for r in range(10)]
            d.close()
            return owners

        res = run_spmd(3, prog, machine=LAPTOP)
        # 10 rows over 3 ranks: 4, 3, 3.
        assert res.values[0] == [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_out_of_range_rows_rejected(self):
        rng = np.random.default_rng(4)
        f, _ = _make_file(rng)

        def prog(comm):
            d = RandomizedDistributor(comm, f, "data")
            d.sample(np.array([999]))

        with pytest.raises(SpmdError, match="out-of-range"):
            run_spmd(2, prog, machine=LAPTOP)

    def test_more_ranks_than_rows_rejected(self):
        f = SimH5File("/tiny.h5")
        f.create_dataset("data", np.ones((2, 2)))

        def prog(comm):
            RandomizedDistributor(comm, f, "data")

        with pytest.raises(SpmdError, match="block-striped"):
            run_spmd(4, prog, machine=LAPTOP)


class TestConventionalDistributor:
    def test_delivers_exact_bootstrap_rows(self):
        rng = np.random.default_rng(5)
        f, data = _make_file(rng)
        boot = rng.integers(0, 48, size=48)

        def prog(comm):
            return ConventionalDistributor(comm, f, "data").sample(boot)

        res = run_spmd(4, prog, machine=LAPTOP)
        np.testing.assert_array_equal(np.concatenate(res.values), data[boot])

    def test_rereads_file_every_sample(self):
        rng = np.random.default_rng(6)
        f, data = _make_file(rng)
        boots = [rng.integers(0, 48, size=48) for _ in range(2)]

        def prog(comm):
            c = ConventionalDistributor(comm, f, "data", rows_per_chunk=8)
            return [c.sample(b) for b in boots]

        run_spmd(2, prog, machine=LAPTOP)
        # Chunked re-reading: many opens (the conventional pathology).
        assert f.open_count > 2

    def test_validation(self):
        f = SimH5File("/v.h5")
        f.create_dataset("data", np.ones((8, 2)))

        def prog(comm):
            ConventionalDistributor(comm, f, "data", rows_per_chunk=0)

        with pytest.raises(SpmdError, match="rows_per_chunk"):
            run_spmd(2, prog, machine=LAPTOP)


class TestLiftedIndexing:
    @given(m=st.integers(1, 30), r=st.integers(0, 899))
    def test_lifted_coords_inverse(self, m, r):
        i, j = lifted_coords(r, m)
        assert 0 <= i < m
        assert r == i + m * j

    @given(m=st.integers(1, 20), p=st.integers(1, 8), size=st.integers(1, 16))
    @settings(max_examples=40)
    def test_lifted_row_block_tiles(self, m, p, size):
        cursor = 0
        for rank in range(size):
            lo, hi = lifted_row_block(m, p, size, rank)
            assert lo == cursor
            cursor = hi
        assert cursor == m * p


class TestDistributedKron:
    @pytest.mark.parametrize("n_readers,nranks", [(1, 3), (2, 4), (3, 3)])
    def test_assembles_exact_lifted_problem(self, n_readers, nranks):
        rng = np.random.default_rng(7)
        m, k, p = 12, 3, 4
        X = rng.standard_normal((m, k))
        Y = rng.standard_normal((m, p))

        def prog(comm):
            dk = DistributedKron(
                comm,
                X if comm.rank < n_readers else None,
                Y if comm.rank < n_readers else None,
                n_readers=n_readers,
            )
            A, b, bounds = dk.build_local()
            dk.close()
            return A, b, bounds

        res = run_spmd(nranks, prog, machine=LAPTOP)
        A_full = scipy.sparse.vstack([v[0] for v in res.values]).toarray()
        b_full = np.concatenate([v[1] for v in res.values])
        np.testing.assert_allclose(A_full, identity_kron(X, p, sparse=False))
        np.testing.assert_allclose(b_full, vec(Y))

    def test_local_slices_are_sparse(self):
        rng = np.random.default_rng(8)
        X = rng.standard_normal((8, 2))
        Y = rng.standard_normal((8, 5))

        def prog(comm):
            dk = DistributedKron(comm, X if comm.rank == 0 else None,
                                 Y if comm.rank == 0 else None)
            A, _, _ = dk.build_local()
            dk.close()
            return scipy.sparse.issparse(A), A.nnz, A.shape

        res = run_spmd(2, prog, machine=LAPTOP)
        for is_sp, nnz, shape in res.values:
            assert is_sp
            # Each lifted row has exactly k = 2 nonzeros.
            assert nnz == shape[0] * 2

    def test_nonreader_without_data_is_fine(self):
        rng = np.random.default_rng(9)
        X = rng.standard_normal((6, 2))
        Y = rng.standard_normal((6, 2))

        def prog(comm):
            dk = DistributedKron(comm, X if comm.rank == 0 else None,
                                 Y if comm.rank == 0 else None, n_readers=1)
            A, b, _ = dk.build_local()
            dk.close()
            return A.shape

        res = run_spmd(3, prog, machine=LAPTOP)
        assert sum(s[0] for s in res.values) == 12

    def test_reader_missing_data_raises(self):
        def prog(comm):
            DistributedKron(comm, None, None, n_readers=1)

        with pytest.raises(SpmdError, match="reader ranks must provide"):
            run_spmd(2, prog, machine=LAPTOP)

    def test_bad_n_readers(self):
        def prog(comm):
            DistributedKron(comm, np.ones((4, 2)), np.ones((4, 2)), n_readers=5)

        with pytest.raises(SpmdError, match="n_readers"):
            run_spmd(2, prog, machine=LAPTOP)
