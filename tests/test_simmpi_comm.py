"""Tests for the simulated MPI communicator (collectives, p2p, split)."""

import numpy as np
import pytest

from repro.simmpi import (
    MAX,
    MIN,
    PROD,
    SUM,
    run_spmd,
    SpmdError,
    TimeCategory,
)
from repro.simmpi.comm import payload_nbytes


class TestPayloadNbytes:
    def test_numpy_array(self):
        assert payload_nbytes(np.zeros(10)) == 80

    def test_bytes(self):
        assert payload_nbytes(b"abc") == 3

    def test_scalars(self):
        assert payload_nbytes(1.5) == 8
        assert payload_nbytes(7) == 8

    def test_none(self):
        assert payload_nbytes(None) == 0

    def test_pickled_object(self):
        assert payload_nbytes({"a": 1}) > 0

    def test_unpicklable_fallback(self):
        import threading

        assert payload_nbytes(threading.Lock()) == 64


class TestCollectives:
    def test_allreduce_sum(self):
        def prog(comm):
            return comm.allreduce(np.full(3, float(comm.rank)))

        res = run_spmd(5, prog)
        expected = np.full(3, sum(range(5)), dtype=float)
        for v in res.values:
            np.testing.assert_array_equal(v, expected)

    def test_allreduce_scalar_ops(self):
        def prog(comm):
            return (
                comm.allreduce(comm.rank + 1, MAX),
                comm.allreduce(comm.rank + 1, MIN),
                comm.allreduce(comm.rank + 1, PROD),
            )

        res = run_spmd(4, prog)
        assert res.values[0] == (4, 1, 24)

    def test_allreduce_returns_private_copy(self):
        def prog(comm):
            out = comm.allreduce(np.ones(2))
            out += comm.rank  # must not leak across ranks
            return out

        res = run_spmd(3, prog)
        np.testing.assert_array_equal(res.values[0], [3.0, 3.0])
        np.testing.assert_array_equal(res.values[2], [5.0, 5.0])

    def test_bcast(self):
        def prog(comm):
            obj = {"data": [1, 2, 3]} if comm.rank == 1 else None
            return comm.bcast(obj, root=1)

        res = run_spmd(4, prog)
        assert all(v == {"data": [1, 2, 3]} for v in res.values)

    def test_gather_and_allgather(self):
        def prog(comm):
            g = comm.gather(comm.rank * 10, root=2)
            ag = comm.allgather(comm.rank)
            return g, ag

        res = run_spmd(4, prog)
        assert res.values[2][0] == [0, 10, 20, 30]
        assert all(v[0] is None for i, v in enumerate(res.values) if i != 2)
        assert all(v[1] == [0, 1, 2, 3] for v in res.values)

    def test_reduce_root_only(self):
        def prog(comm):
            return comm.reduce(float(comm.rank), SUM, root=0)

        res = run_spmd(4, prog)
        assert res.values[0] == 6.0
        assert all(v is None for v in res.values[1:])

    def test_scatter(self):
        def prog(comm):
            vals = [i * i for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(vals, root=0)

        res = run_spmd(4, prog)
        assert res.values == [0, 1, 4, 9]

    def test_scatter_wrong_count_raises(self):
        def prog(comm):
            vals = [1, 2] if comm.rank == 0 else None
            return comm.scatter(vals, root=0)

        with pytest.raises(SpmdError):
            run_spmd(3, prog)

    def test_alltoall(self):
        def prog(comm):
            return comm.alltoall([comm.rank * 10 + j for j in range(comm.size)])

        res = run_spmd(3, prog)
        # Rank r receives [contrib[src][r] for src in 0..2].
        assert res.values[0] == [0, 10, 20]
        assert res.values[2] == [2, 12, 22]

    def test_barrier_advances_all_clocks_together(self):
        def prog(comm):
            if comm.rank == 0:
                comm.clock.charge_compute(1.0)  # rank 0 is slow
            comm.barrier()
            return comm.clock.now

        res = run_spmd(3, prog)
        # After the barrier every clock is at (just past) the slowest rank.
        assert all(t >= 1.0 for t in res.values)

    def test_collective_charges_declared_category(self):
        def prog(comm):
            comm.allreduce(np.ones(4), category=TimeCategory.DISTRIBUTION)
            return comm.clock.snapshot()

        res = run_spmd(2, prog)
        assert res.values[0]["distribution"] > 0.0
        assert res.values[0]["communication"] == 0.0


class TestPointToPoint:
    def test_send_recv(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(4), dest=1, tag=7)
                return None
            return comm.recv(source=0, tag=7)

        res = run_spmd(2, prog)
        np.testing.assert_array_equal(res.values[1], np.arange(4))

    def test_tags_keep_messages_apart(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("tag1", dest=1, tag=1)
                comm.send("tag2", dest=1, tag=2)
                return None
            # Receive in reverse tag order.
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return first, second

        res = run_spmd(2, prog)
        assert res.values[1] == ("tag1", "tag2")

    def test_message_order_preserved_per_tag(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1)
                return None
            return [comm.recv(source=0) for _ in range(5)]

        res = run_spmd(2, prog)
        assert res.values[1] == [0, 1, 2, 3, 4]

    def test_bad_dest_raises(self):
        def prog(comm):
            comm.send(1, dest=99)

        with pytest.raises(SpmdError):
            run_spmd(2, prog)


class TestSplit:
    def test_split_into_even_odd(self):
        def prog(comm):
            sub = comm.split(comm.rank % 2)
            return sub.rank, sub.size, sub.allreduce(comm.rank, SUM)

        res = run_spmd(6, prog)
        for world_rank, (r, size, total) in enumerate(res.values):
            assert size == 3
            expected = sum(x for x in range(6) if x % 2 == world_rank % 2)
            assert total == expected

    def test_split_key_reorders(self):
        def prog(comm):
            sub = comm.split(0, key=-comm.rank)  # reverse order
            return sub.rank

        res = run_spmd(4, prog)
        assert res.values == [3, 2, 1, 0]

    def test_nested_split(self):
        def prog(comm):
            half = comm.split(comm.rank // 2)
            pair = half.split(half.rank)
            return half.size, pair.size

        res = run_spmd(4, prog)
        assert all(v == (2, 1) for v in res.values)


class TestErrorPropagation:
    def test_exception_aborts_all_ranks(self):
        def prog(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            comm.barrier()  # other ranks would block forever without abort
            return "done"

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(3, prog)
        assert exc_info.value.rank == 1
        assert "boom" in str(exc_info.value.original)

    def test_mismatched_collective_types_detected_by_combine(self):
        # Rank 0 calls bcast while rank 1 calls allreduce at the same
        # sequence point: both meet in the same slot; the payload shape
        # mismatch surfaces as an error rather than a hang.
        def prog(comm):
            if comm.rank == 0:
                return comm.bcast("x", root=0)
            return comm.allreduce(np.ones(2))

        with pytest.raises(SpmdError):
            run_spmd(2, prog)


class TestReduceScatterAndScan:
    def test_reduce_scatter_blocks(self):
        def prog(comm):
            v = np.arange(8, dtype=float) + comm.rank
            return comm.reduce_scatter(v)

        res = run_spmd(4, prog)
        # Elementwise sum = arange(8)*4 + 6; rank r gets block r of 2.
        full = np.arange(8, dtype=float) * 4 + 6
        for r in range(4):
            np.testing.assert_array_equal(res.values[r], full[2 * r : 2 * r + 2])

    def test_reduce_scatter_uneven_split(self):
        def prog(comm):
            return comm.reduce_scatter(np.ones(5))

        res = run_spmd(3, prog)
        sizes = [len(v) for v in res.values]
        assert sizes == [2, 2, 1]
        assert all(np.all(v == 3.0) for v in res.values)

    def test_scan_inclusive_prefixes(self):
        def prog(comm):
            return comm.scan(float(comm.rank + 1))

        res = run_spmd(4, prog)
        assert res.values == [1.0, 3.0, 6.0, 10.0]

    def test_scan_arrays_with_max(self):
        def prog(comm):
            v = np.array([comm.rank, -comm.rank], dtype=float)
            return comm.scan(v, MAX)

        res = run_spmd(3, prog)
        np.testing.assert_array_equal(res.values[2], [2.0, 0.0])

    def test_scan_returns_private_copy(self):
        def prog(comm):
            out = comm.scan(np.ones(2))
            out += 100.0
            return comm.allreduce(np.zeros(2))  # make sure nothing leaked

        res = run_spmd(2, prog)
        np.testing.assert_array_equal(res.values[0], np.zeros(2))
