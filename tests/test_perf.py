"""Tests for flop accounting, roofline model and breakdown reports."""

import pytest
from hypothesis import given, strategies as st

from repro.perf import (
    BreakdownRow,
    RooflinePoint,
    charge_cholesky,
    charge_gemm,
    charge_gemv,
    charge_trsv,
    charge_sparse_solve,
    cholesky_flops,
    classify,
    format_breakdown_table,
    gemm_flops,
    gemv_flops,
    roofline_attainable,
    spmm_flops,
    spmv_flops,
    trsv_flops,
)
from repro.perf.flops import charge_axpy
from repro.perf.roofline import paper_kernel_points, KNL_PEAK_GFLOPS
from repro.simmpi import CORI_KNL, RankClock, TimeCategory


class TestFlopCounts:
    def test_standard_counts(self):
        assert gemm_flops(2, 3, 4) == 48
        assert gemv_flops(5, 6) == 60
        assert cholesky_flops(6) == pytest.approx(72)
        assert trsv_flops(7) == 49
        assert spmm_flops(100, 3) == 600
        assert spmv_flops(100) == 200

    @given(m=st.integers(0, 100), n=st.integers(0, 100), k=st.integers(0, 100))
    def test_gemm_nonnegative_and_symmetric_in_mn(self, m, n, k):
        assert gemm_flops(m, n, k) == gemm_flops(n, m, k) >= 0

    def test_negative_dims_rejected(self):
        with pytest.raises(ValueError):
            gemm_flops(-1, 2, 3)
        with pytest.raises(ValueError):
            spmv_flops(-1)


class TestCharging:
    def test_gemm_charge_uses_machine_rate(self):
        clock = RankClock()
        secs = charge_gemm(clock, CORI_KNL, 100, 100, 100)
        assert secs == pytest.approx(2e6 / (30.83e9))
        assert clock.breakdown[TimeCategory.COMPUTE] == pytest.approx(secs)

    def test_trsv_much_slower_than_gemm_per_flop(self):
        c1, c2 = RankClock(), RankClock()
        t_gemm = charge_gemm(c1, CORI_KNL, 100, 1, 100)  # 2e4 flops
        t_trsv = charge_trsv(c2, CORI_KNL, 141)  # ~2e4 flops
        assert t_trsv > 100 * t_gemm  # 30.83 vs 0.011 GFLOPS

    def test_all_helpers_accumulate(self):
        clock = RankClock()
        charge_gemv(clock, CORI_KNL, 10, 10)
        charge_cholesky(clock, CORI_KNL, 10)
        charge_sparse_solve(clock, CORI_KNL, 100, 2)
        charge_sparse_solve(clock, CORI_KNL, 100)
        charge_axpy(clock, CORI_KNL, 1000)
        assert clock.breakdown[TimeCategory.COMPUTE] > 0
        assert clock.now == clock.breakdown[TimeCategory.COMPUTE]


class TestRoofline:
    def test_attainable_two_segments(self):
        # Memory-bound region: roof = AI * BW.
        assert roofline_attainable(0.1, mem_bw_gbs=90.0) == pytest.approx(9.0)
        # Compute-bound region: capped at peak.
        assert roofline_attainable(1e4) == KNL_PEAK_GFLOPS

    def test_paper_kernels_all_memory_bound(self):
        """The paper's Advisor analysis found every kernel DRAM-bound."""
        for pt in paper_kernel_points():
            assert classify(pt) == "memory-bound", pt.kernel

    def test_paper_kernel_rates(self):
        pts = {p.kernel: p for p in paper_kernel_points()}
        assert pts["uoi_lasso/gemm"].gflops == 30.83
        assert pts["uoi_lasso/gemm"].intensity == 3.59
        assert pts["uoi_var/sparse_gemv"].gflops == 2.08

    def test_achieved_below_roof(self):
        """Measured GFLOPS never exceed the attainable roof."""
        for pt in paper_kernel_points():
            assert pt.gflops <= roofline_attainable(pt.intensity) * 1.05

    def test_validation(self):
        with pytest.raises(ValueError):
            RooflinePoint("x", -1.0, 0.5)
        with pytest.raises(ValueError):
            roofline_attainable(-0.1)


class TestBreakdownReport:
    def test_total_and_get(self):
        row = BreakdownRow("cfg", {"computation": 2.0, "communication": 1.0})
        assert row.total == 3.0
        assert row.get("distribution") == 0.0

    def test_table_renders_all_rows(self):
        rows = [
            BreakdownRow("a", {"computation": 1.0}),
            BreakdownRow("b", {"communication": 2.0}, extra={"note": "hi"}),
        ]
        text = format_breakdown_table(rows, title="T")
        assert text.startswith("T\n")
        assert "a" in text and "b" in text and "note" in text and "hi" in text
        assert "total (s)" in text

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            format_breakdown_table([])
