"""Ingestion layer: double buffer, ingest thread, tick sources.

The contract under test: the exchange is bounded (backpressure or
bounded shedding, never unbounded growth), lossless under the
``"block"`` policy, and the socket/replay sources deliver ticks
bitwise equal to their batch counterparts.
"""

import threading
import time

import numpy as np
import pytest

from repro.datasets import finance, var_synthetic
from repro.stream import (
    DoubleBuffer,
    FinanceReplaySource,
    Ingestor,
    SocketSource,
    SpikeRateSource,
    serve_ticks,
)


# ---------------------------------------------------------------------------
# double buffer
# ---------------------------------------------------------------------------
class TestDoubleBuffer:
    def test_block_policy_is_lossless_in_order(self):
        buf = DoubleBuffer(capacity=4, policy="block")
        rows = [np.array([float(i)]) for i in range(50)]
        ing = Ingestor(iter(rows), buf)
        ing.start()
        out = list(buf.drain())
        ing.join()
        ing.check()
        assert [r[0] for r in out] == [float(i) for i in range(50)]
        assert buf.produced == 50 and buf.dropped == 0

    def test_block_policy_exerts_backpressure(self):
        buf = DoubleBuffer(capacity=2, policy="block")
        buf.put(np.zeros(1))
        buf.put(np.zeros(1))
        blocked = threading.Event()
        passed = threading.Event()

        def producer():
            blocked.set()
            buf.put(np.ones(1))  # must wait for the consumer's swap
            passed.set()

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        assert blocked.wait(1.0)
        assert not passed.wait(0.05), "put returned despite a full buffer"
        assert len(buf.swap()) == 2
        assert passed.wait(1.0), "put still blocked after the swap"
        t.join()

    def test_drop_policy_sheds_oldest_and_counts(self):
        buf = DoubleBuffer(capacity=3, policy="drop")
        for i in range(10):
            buf.put(np.array([float(i)]))
        buf.close()
        kept = [r[0] for r in buf.drain()]
        assert kept == [7.0, 8.0, 9.0]
        assert buf.dropped == 7 and buf.produced == 10

    def test_close_wakes_blocked_producer(self):
        buf = DoubleBuffer(capacity=1, policy="block")
        buf.put(np.zeros(1))
        errors = []

        def producer():
            try:
                buf.put(np.ones(1))
            except ValueError as exc:
                errors.append(exc)

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        time.sleep(0.05)
        buf.close()
        t.join(1.0)
        assert not t.is_alive()
        assert errors and "closed" in str(errors[0])

    def test_put_after_close_raises(self):
        buf = DoubleBuffer()
        buf.close()
        with pytest.raises(ValueError, match="closed"):
            buf.put(np.zeros(1))

    def test_drain_delivers_tick_racing_close(self):
        buf = DoubleBuffer(capacity=8)
        buf.put(np.array([1.0]))
        buf.close()
        assert [r[0] for r in buf.drain()] == [1.0]

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            DoubleBuffer(capacity=0)
        with pytest.raises(ValueError, match="policy"):
            DoubleBuffer(policy="spill")


class TestIngestor:
    def test_source_error_is_captured_and_reraised(self):
        def bad_source():
            yield np.zeros(2)
            raise RuntimeError("feed died")

        buf = DoubleBuffer()
        ing = Ingestor(bad_source(), buf)
        ing.start()
        rows = list(buf.drain())
        ing.join()
        assert len(rows) == 1
        with pytest.raises(RuntimeError, match="ingestion failed"):
            ing.check()


# ---------------------------------------------------------------------------
# tick sources
# ---------------------------------------------------------------------------
class TestSources:
    def test_var_iter_ticks_bitwise_equals_batch(self):
        """The seed contract: first n stream ticks == batch simulation."""
        from repro.var.model import VARProcess

        rng = np.random.default_rng(11)
        coefs = var_synthetic.random_sparse_coefs(
            4, 2, density=0.2, target_radius=0.6, rng=rng
        )
        batch = VARProcess(coefs, noise_cov=np.eye(4)).simulate(
            30, rng, burn_in=200
        )
        stream = var_synthetic.iter_ticks(
            4, order=2, density=0.2, target_radius=0.6, seed=11, burn_in=200
        )
        got = np.array([next(stream) for _ in range(30)])
        assert np.array_equal(got, batch)

    def test_var_iter_ticks_stable_across_instances(self):
        a = var_synthetic.iter_ticks(3, seed=5)
        b = var_synthetic.iter_ticks(3, seed=5)
        for _ in range(10):
            assert np.array_equal(next(a), next(b))

    def test_finance_iter_ticks_bitwise_equals_batch(self):
        panel = finance.make_stock_panel(6, 120, rng=np.random.default_rng(2))
        batch = finance.first_differences(finance.weekly_closes(panel.prices))
        got = np.array(list(finance.iter_ticks(6, n_days=120, seed=2)))
        assert np.array_equal(got, batch)
        assert got.shape[0] == 120 // 5 - 1

    def test_spike_rate_source_is_positive_and_seeded(self):
        rows = list(SpikeRateSource(5, seed=4, max_ticks=20))
        again = list(SpikeRateSource(5, seed=4, max_ticks=20))
        assert len(rows) == 20
        assert all(np.all(r > 0) for r in rows)
        assert all(np.array_equal(a, b) for a, b in zip(rows, again))
        # The log-link bounds rates away from zero and overflow.
        base = 2.0
        assert all(
            np.all(r >= base * np.exp(-3)) and np.all(r <= base * np.exp(3))
            for r in rows
        )

    def test_finance_replay_source_matches_generator(self):
        direct = list(finance.iter_ticks(4, n_days=60, seed=9))
        via_source = list(FinanceReplaySource(4, n_days=60, seed=9))
        assert len(direct) == len(via_source)
        assert all(np.array_equal(a, b) for a, b in zip(direct, via_source))


# ---------------------------------------------------------------------------
# socket transport
# ---------------------------------------------------------------------------
class TestSocketSource:
    def test_round_trip_bitwise(self):
        rows = list(finance.iter_ticks(3, n_days=60, seed=6))
        addr, server = serve_ticks(iter(rows))
        src = SocketSource.connect(*addr)
        got = list(src)
        server.join(5.0)
        assert src.p == 3 and src.received == len(rows)
        assert all(np.array_equal(a, b) for a, b in zip(got, rows))

    def test_feeds_ingestor_end_to_end(self):
        rows = [np.full(2, float(i)) for i in range(12)]
        addr, server = serve_ticks(iter(rows))
        buf = DoubleBuffer(capacity=4)
        ing = Ingestor(SocketSource.connect(*addr), buf)
        ing.start()
        got = list(buf.drain())
        ing.join()
        ing.check()
        server.join(5.0)
        assert all(np.array_equal(a, b) for a, b in zip(got, rows))

    def test_shape_mismatch_rejected(self):
        rows = [np.zeros(2), np.zeros(3)]
        addr, server = serve_ticks(iter(rows))
        src = SocketSource.connect(*addr)
        with pytest.raises(ValueError, match="tick shape"):
            list(src)
        server.join(5.0)
