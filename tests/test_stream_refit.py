"""Rolling re-fit loop: cadence, warm-start identity, recovery.

The acceptance bar from the streaming issue: over a rolling run of K
windows, every window's supports (and coefficients) are identical to
an independent cold batch fit of that window's data — warm starts
change cost, never results — on both the finance panel and the
synthetic spike-rate stream; and a window whose run dies mid-fit
still converges via recovery.
"""

import numpy as np
import pytest

from repro.core.config import UoILassoConfig, UoIVarConfig
from repro.engine import SerialExecutor, VarPlan, run_plan
from repro.engine.executors import Executor
from repro.resilience.faults import FaultPlan
from repro.stream import (
    DiffLog,
    FinanceReplaySource,
    RollingRefitter,
    SpikeRateSource,
    StreamConfig,
    StreamOutputs,
    run_rolling,
)
from repro.stream.diff import read_events
from repro.telemetry import Recorder, use_recorder

VAR_CFG = UoIVarConfig(
    order=1,
    lasso=UoILassoConfig(
        n_lambdas=5,
        n_selection_bootstraps=4,
        n_estimation_bootstraps=3,
        solver="cd",
        random_state=17,
    ),
)


def _cfg(**overrides):
    base = dict(var=VAR_CFG, window=30, cadence=8, max_windows=3)
    base.update(overrides)
    return StreamConfig(**base)


def _spikes(n):
    return list(SpikeRateSource(4, seed=21, max_ticks=n))


# ---------------------------------------------------------------------------
# cadence and shapes
# ---------------------------------------------------------------------------
class TestCadence:
    def test_first_fit_at_full_window_then_every_cadence(self):
        out = run_rolling(iter(_spikes(60)), _cfg())
        assert [w.t_end for w in out.windows] == [30, 38, 46]
        assert [w.index for w in out.windows] == [0, 1, 2]
        assert not out.windows[0].warm
        assert all(w.warm for w in out.windows[1:])

    def test_min_samples_starts_earlier(self):
        out = run_rolling(iter(_spikes(40)), _cfg(min_samples=12, max_windows=2))
        assert [w.t_end for w in out.windows] == [12, 20]

    def test_source_exhaustion_before_priming_raises(self):
        with pytest.raises(ValueError, match="no windows were fit"):
            run_rolling(iter(_spikes(10)), _cfg())

    def test_empty_source_raises(self):
        with pytest.raises(ValueError, match="empty stream"):
            run_rolling(iter([]), _cfg())

    def test_p_inferred_from_first_tick(self):
        out = run_rolling(iter(_spikes(30)), _cfg(max_windows=1))
        assert out.p == 4 and out.coef.shape == (16,)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="window must exceed"):
            StreamConfig(var=VAR_CFG, window=1)
        with pytest.raises(ValueError, match="cadence"):
            StreamConfig(var=VAR_CFG, cadence=0)
        with pytest.raises(ValueError, match="min_samples"):
            StreamConfig(var=VAR_CFG, window=30, min_samples=31)
        with pytest.raises(ValueError, match="chain_seeding"):
            StreamConfig(var=VAR_CFG, chain_seeding="warm")


# ---------------------------------------------------------------------------
# the headline invariant: warm starts change cost, never results
# ---------------------------------------------------------------------------
class TestWarmColdIdentity:
    @pytest.mark.parametrize(
        "make_source",
        [
            lambda: iter(_spikes(60)),
            lambda: FinanceReplaySource(4, n_days=240, seed=13),
        ],
        ids=["spike_rate", "finance"],
    )
    def test_every_window_identical_to_cold_batch_fit(self, make_source):
        """verify=True re-fits each window cold from scratch on a serial
        backend and asserts bitwise-equal supports and coefficients —
        the streaming acceptance criterion, on both data regimes."""
        out = run_rolling(make_source(), _cfg(verify=True))
        assert len(out) == 3  # verify raised nowhere

    def test_warm_and_cold_rolling_runs_match_bitwise(self):
        warm = run_rolling(iter(_spikes(60)), _cfg(warm=True))
        cold = run_rolling(iter(_spikes(60)), _cfg(warm=False))
        assert [w.t_end for w in warm.windows] == [w.t_end for w in cold.windows]
        for ww, cw in zip(warm.windows, cold.windows):
            assert np.array_equal(ww.outputs.supports, cw.outputs.supports)
            assert np.array_equal(ww.outputs.coef, cw.outputs.coef)
        assert warm.windows[1].warm and not cold.windows[1].warm

    def test_unseeded_chains_also_identical(self):
        """chain_seeding='none' (the bench baseline) is slower, not
        different: same supports and coefficients again."""
        seeded = run_rolling(iter(_spikes(46)), _cfg(max_windows=2))
        unseeded = run_rolling(
            iter(_spikes(46)),
            _cfg(max_windows=2, warm=False, chain_seeding="none"),
        )
        for sw, uw in zip(seeded.windows, unseeded.windows):
            assert np.array_equal(sw.outputs.supports, uw.outputs.supports)
            assert np.array_equal(sw.outputs.coef, uw.outputs.coef)

    def test_identity_requires_converged_solves(self):
        """The identity's one precondition, pinned by a real case.

        On this seed an ill-conditioned bootstrap window makes some cd
        solves crawl: with the default ``max_iter=500`` sweep budget
        they stop early at start-dependent points, and warm/cold
        supports genuinely diverge.  The refitter must *report* the
        budget exhaustion (``WindowFit.nonconverged``, the
        ``stream.nonconverged_solves`` counter), and restoring a
        convergent budget must restore bitwise identity.
        """
        def cfg(max_iter, **overrides):
            return StreamConfig(
                var=UoIVarConfig(
                    order=1,
                    lasso=UoILassoConfig(
                        n_lambdas=6,
                        n_selection_bootstraps=4,
                        n_estimation_bootstraps=3,
                        solver="cd",
                        max_iter=max_iter,
                        random_state=3,
                    ),
                ),
                window=40,
                cadence=10,
                max_windows=2,
                **overrides,
            )

        series = np.array(list(SpikeRateSource(5, order=1, seed=3, max_ticks=50)))

        rec = Recorder()
        with use_recorder(rec):
            starved = run_rolling(iter(series), cfg(500))
        stuck = sum(w.nonconverged for w in starved.windows)
        assert stuck > 0
        assert rec.counter_values()["stream.nonconverged_solves"] == stuck
        assert np.array_equal(
            starved.extra["stream_nonconverged"],
            np.array([w.nonconverged for w in starved.windows]),
        )

        # Same data, solver allowed to reach tolerance: verify=True
        # passes every window (a divergence would raise), nothing is
        # reported nonconverged.
        healthy = run_rolling(iter(series), cfg(20000, verify=True))
        assert sum(w.nonconverged for w in healthy.windows) == 0


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------
class _FlakyExecutor(Executor):
    """Delegates to a serial backend, dying on chosen run_stage calls."""

    name = "flaky"

    def __init__(self, fail_calls):
        self.inner = SerialExecutor()
        self.fail_calls = set(fail_calls)
        self.calls = 0

    def run_stage(self, plan, stage, chains, hooks):
        self.calls += 1
        if self.calls in self.fail_calls:
            raise RuntimeError("injected mid-window failure")
        return self.inner.run_stage(plan, stage, chains, hooks)


class TestRecovery:
    def test_failed_window_retries_and_matches_clean_run(self):
        clean = run_rolling(iter(_spikes(46)), _cfg(max_windows=2))
        # Call 3 is window 1's selection stage: die mid-stream, recover.
        flaky = _FlakyExecutor(fail_calls=[3])
        out = run_rolling(
            iter(_spikes(46)), _cfg(max_windows=2), executor=flaky
        )
        assert out.windows[0].retries == 0
        assert out.windows[1].retries == 1
        for cw, fw in zip(clean.windows, out.windows):
            assert np.array_equal(cw.outputs.supports, fw.outputs.supports)
            assert np.array_equal(cw.outputs.coef, fw.outputs.coef)

    def test_retry_budget_exhaustion_propagates(self):
        flaky = _FlakyExecutor(fail_calls=range(1, 50))
        with pytest.raises(RuntimeError, match="injected"):
            run_rolling(
                iter(_spikes(46)),
                _cfg(max_windows=1, max_retries=1),
                executor=flaky,
            )

    def test_worker_killed_mid_window_converges_on_elastic(self):
        """A worker crash inside a streaming window's fit is absorbed by
        the elastic backend's lease reassignment; the rolling results
        stay bitwise identical to the undisturbed serial run."""
        from repro.engine.elastic import ElasticExecutor

        clean = run_rolling(iter(_spikes(46)), _cfg(max_windows=2))
        executor = ElasticExecutor(
            workers=2, faults=FaultPlan().crash(1, at_collective=1)
        )
        try:
            out = run_rolling(
                iter(_spikes(46)), _cfg(max_windows=2), executor=executor
            )
            stats = executor.utilization()
        finally:
            executor.shutdown()
        assert stats["leaves"] >= 1
        for cw, fw in zip(clean.windows, out.windows):
            assert np.array_equal(cw.outputs.supports, fw.outputs.supports)
            assert np.array_equal(cw.outputs.coef, fw.outputs.coef)


# ---------------------------------------------------------------------------
# outputs, diffs, telemetry
# ---------------------------------------------------------------------------
class TestOutputs:
    def test_stream_outputs_quack_like_plan_outputs(self):
        out = run_rolling(iter(_spikes(60)), _cfg())
        final = out.windows[-1].outputs
        assert out.coef is final.coef
        assert out.supports is final.supports
        assert out.losses is final.losses
        assert out.winners is final.winners
        assert out.lambdas is final.lambdas
        extra = out.extra
        assert list(extra["stream_t_end"]) == [30, 38, 46]
        assert extra["stream_stability"].shape == (2,)
        assert extra["stream_seconds"].shape == (3,)

    def test_service_flattening_accepts_stream_outputs(self):
        from repro.service.jobs import outputs_to_arrays

        out = run_rolling(iter(_spikes(46)), _cfg(max_windows=2))
        arrays = outputs_to_arrays(out)
        assert np.array_equal(arrays["coef"], out.coef)
        assert "extra_stream_stability" in arrays
        assert "extra_stream_t_end" in arrays

    def test_diff_log_and_matching_window_diffs(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with DiffLog(path) as log:
            out = run_rolling(iter(_spikes(60)), _cfg(), diff_log=log)
        events = read_events(path)
        assert [e["window"] for e in events] == [0, 1, 2]
        assert "stability" not in events[0]  # no previous network yet
        assert events[1]["t_end"] == 38
        assert events[1]["stability"] == pytest.approx(
            out.windows[1].diff.stability
        )
        assert events[2]["edges"]  # full edge list rides every event
        assert out.windows[0].diff is None

    def test_telemetry_spans_and_counters(self):
        rec = Recorder()
        with use_recorder(rec):
            run_rolling(iter(_spikes(60)), _cfg())
        spans = rec.spans_named("stream.window/")
        assert [s.name for s in spans] == [
            "stream.window/0", "stream.window/1", "stream.window/2",
        ]
        assert all(s.category == "computation" for s in spans)
        counters = rec.counter_values()
        assert counters["stream.refits"] == 3
        assert counters["stream.ticks"] == 46  # drain stops at max_windows
        assert counters["stream.edges_gained"] >= 0

    def test_on_window_callback_sees_every_fit(self):
        seen = []
        run_rolling(iter(_spikes(60)), _cfg(), on_window=seen.append)
        assert [w.index for w in seen] == [0, 1, 2]

    def test_refitter_finalize_empty_raises(self):
        refitter = RollingRefitter(_cfg(), 4)
        with pytest.raises(ValueError, match="no windows"):
            refitter.finalize()

    def test_stream_outputs_requires_windows(self):
        with pytest.raises(ValueError, match="no windows"):
            StreamOutputs([], 4, 1)


class TestPlanVerification:
    def test_verify_plan_clean_on_warm_started_plan(self):
        """A warm-started streaming plan passes the plan verifier (the
        DET/planver satellite: warm payload differences are declared in
        meta, not smuggled)."""
        from repro.analysis.planver import assert_valid_plan

        series = np.array(_spikes(40))
        first = VarPlan(VAR_CFG, series[:30], keep_paths=True)
        run_plan(first, SerialExecutor())
        warm = VarPlan(
            VAR_CFG, series[8:38], warm_start=first.selection_paths
        )
        assert_valid_plan(warm)
        run_plan(warm, SerialExecutor())

    def test_run_plan_verify_flag_on_warm_plan(self):
        series = np.array(_spikes(34))
        first = VarPlan(VAR_CFG, series[:30], keep_paths=True)
        run_plan(first, SerialExecutor())
        warm = VarPlan(
            VAR_CFG, series[4:34], warm_start=first.selection_paths
        )
        out = run_plan(warm, SerialExecutor(), verify=True)
        cold = run_plan(VarPlan(VAR_CFG, series[4:34]), SerialExecutor())
        assert np.array_equal(out.supports, cold.supports)
        assert np.array_equal(out.coef, cold.coef)
