"""Tests for the in-process service: lifecycle, batching, fair share."""

import threading

import numpy as np
import pytest

from repro.core.config import UoILassoConfig, UoIVarConfig
from repro.core.uoi_lasso import UoILasso
from repro.core.uoi_var import UoIVar
from repro.engine import SerialExecutor, run_plan
from repro.engine.plan import Subproblem, UoIPlan
from repro.engine.plans import LassoPlan
from repro.service import (
    CANCELLED,
    DONE,
    QUEUED,
    RUNNING,
    AdmissionError,
    BatchPlan,
    Job,
    JobCancelled,
    JobSpec,
    Scheduler,
    Service,
    ServiceClient,
    UnknownJobError,
)

LASSO_CFG = UoILassoConfig(
    n_lambdas=4,
    n_selection_bootstraps=4,
    n_estimation_bootstraps=4,
    max_iter=120,
    random_state=3,
)
VAR_CFG = UoIVarConfig(
    lasso=UoILassoConfig(
        n_lambdas=3,
        n_selection_bootstraps=3,
        n_estimation_bootstraps=3,
        max_iter=120,
        random_state=3,
    )
)


@pytest.fixture(scope="module")
def lasso_problem():
    rng = np.random.default_rng(5)
    X = rng.normal(size=(40, 6))
    beta = np.zeros(6)
    beta[:2] = (1.2, -0.8)
    y = X @ beta + 0.1 * rng.normal(size=40)
    return {"X": X, "y": y}


@pytest.fixture(scope="module")
def var_problem():
    rng = np.random.default_rng(6)
    series = np.zeros((50, 3))
    series[0] = rng.normal(size=3)
    for t in range(1, 50):
        series[t] = 0.5 * series[t - 1] + 0.1 * rng.normal(size=3)
    return {"series": series}


class GatedPlan(UoIPlan):
    """Deterministic stub: each task blocks on its gate, then emits.

    Lets the tests hold the single worker inside a run (or hold a job
    in the queue behind it) and release it on cue — no timing races.
    """

    stages = ("work",)
    kind = "gated_stub"

    def __init__(self, n_tasks=2, label="g"):
        self.label = label
        self.started = threading.Event()
        self.release = threading.Event()
        self.n_tasks = n_tasks
        self.emitted = []

    def meta(self):
        return {"kind": self.kind, "label": self.label}

    def chains(self, stage):
        return [
            [Subproblem(stage, i, None, f"{self.label}/t{i}", i, 0)]
            for i in range(self.n_tasks)
        ]

    def run_chain(self, stage, tasks, recovered, emit):
        for task in tasks:
            self.started.set()
            assert self.release.wait(30.0), "test forgot to release the gate"
            emit(task, {"x": np.full(1, float(task.bootstrap))})

    def reduce(self, stage, results):
        self.emitted = sorted(results)

    def finalize(self):
        return {"emitted": self.emitted}


def make_stub_job(job_id, seq, plan=None, tenant="default"):
    spec = JobSpec(kind="lasso", data={}, tenant=tenant)
    return Job(
        id=job_id, spec=spec, plan=plan or GatedPlan(label=job_id), seq=seq
    )


class TestJobSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(AdmissionError, match="kind"):
            JobSpec(kind="ridge", data={}).validate()

    def test_missing_arrays_rejected(self, lasso_problem):
        with pytest.raises(AdmissionError, match="missing"):
            JobSpec(kind="lasso", data={"X": lasso_problem["X"]}).validate()
        with pytest.raises(AdmissionError, match="series"):
            JobSpec(kind="var", data={}).validate()

    def test_spec_digest_pins_the_computation(self, lasso_problem):
        a = JobSpec(kind="lasso", data=lasso_problem, config=LASSO_CFG)
        b = JobSpec(kind="lasso", data=dict(lasso_problem), config=LASSO_CFG)
        assert a.spec_digest() == b.spec_digest()
        other = {"X": lasso_problem["X"], "y": -lasso_problem["y"]}
        assert a.spec_digest() != JobSpec(
            kind="lasso", data=other, config=LASSO_CFG
        ).spec_digest()
        assert a.spec_digest() != JobSpec(
            kind="lasso", data=lasso_problem
        ).spec_digest()

    def test_store_key_scoped_by_tenant_and_spec(self, lasso_problem):
        def job(tenant, data, jid="j1"):
            spec = JobSpec(
                kind="lasso", data=data, tenant=tenant, idempotency_key="K"
            )
            return Job(id=jid, spec=spec, plan=GatedPlan(), seq=1)

        a = job("t1", lasso_problem)
        assert a.store_key.startswith("t1/K/")
        # Two tenants sharing an idempotency key never share records.
        assert a.store_key != job("t2", lasso_problem).store_key
        # Same key, different computation: fresh prefix, no stale hit.
        other = {"X": lasso_problem["X"], "y": -lasso_problem["y"]}
        assert a.store_key != job("t1", other).store_key
        # Same tenant+key+spec: stable across service instances.
        assert a.store_key == job("t1", lasso_problem, jid="j7").store_key

    def test_compat_key_depends_on_family_backend_shapes(self, lasso_problem):
        a = JobSpec(kind="lasso", data=lasso_problem, tenant="t1")
        b = JobSpec(kind="lasso", data=lasso_problem, tenant="t2")
        assert a.compat_key() == b.compat_key()  # tenant never matters
        c = JobSpec(kind="lasso", data=lasso_problem, backend="multiprocess")
        assert a.compat_key() != c.compat_key()
        small = {k: v[:10] for k, v in lasso_problem.items()}
        d = JobSpec(kind="lasso", data=small)
        assert a.compat_key() != d.compat_key()


class TestBatchPlanIdentity:
    def test_batched_outputs_bitwise_equal_solo(self, lasso_problem):
        solo = run_plan(
            LassoPlan(LASSO_CFG, lasso_problem["X"], lasso_problem["y"]),
            SerialExecutor(),
        )
        batched = run_plan(
            BatchPlan(
                [
                    (
                        mid,
                        LassoPlan(
                            LASSO_CFG, lasso_problem["X"], lasso_problem["y"]
                        ),
                    )
                    for mid in ("j1", "j2", "j3")
                ]
            ),
            SerialExecutor(),
        )
        for mid in ("j1", "j2", "j3"):
            out = batched[mid]
            assert np.array_equal(out.coef, solo.coef)
            assert np.array_equal(out.supports, solo.supports)
            assert np.array_equal(out.losses, solo.losses)
            assert np.array_equal(out.winners, solo.winners)
            assert np.array_equal(out.lambdas, solo.lambdas)

    def test_incompatible_members_rejected(self, lasso_problem):
        lasso = LassoPlan(LASSO_CFG, lasso_problem["X"], lasso_problem["y"])
        with pytest.raises(ValueError, match="compatible|stages"):
            BatchPlan([("a", lasso), ("b", GatedPlan())])

    def test_member_ids_validated(self, lasso_problem):
        lasso = LassoPlan(LASSO_CFG, lasso_problem["X"], lasso_problem["y"])
        with pytest.raises(ValueError, match="duplicate"):
            BatchPlan([("a", lasso), ("a", lasso)])
        with pytest.raises(ValueError, match="must not contain"):
            BatchPlan([("a|b", lasso)])

    def test_keys_are_prefixed_and_unique(self, lasso_problem):
        plan = BatchPlan(
            [
                (mid, LassoPlan(LASSO_CFG, lasso_problem["X"], lasso_problem["y"]))
                for mid in ("a", "b")
            ]
        )
        keys = [
            t.key for chain in plan.chains("selection") for t in chain
        ]
        assert len(keys) == len(set(keys))
        assert all(k.startswith(("a|", "b|")) for k in keys)
        assert BatchPlan.split_key("a|serial-sel/k0") == ("a", "serial-sel/k0")


class TestSchedulerLifecycle:
    def test_cancel_while_queued_is_immediate(self):
        sched = Scheduler(workers=1, batching=False)
        try:
            running = make_stub_job("ja", 1)
            queued = make_stub_job("jb", 2)
            sched.submit(running)
            assert running.plan.started.wait(10.0)
            sched.submit(queued)
            assert queued.state == QUEUED
            assert sched.cancel(queued) is True
            assert queued.state == CANCELLED
            assert queued.done_event.is_set()
            assert sched.queue_depth() == 0
            running.plan.release.set()
            assert running.done_event.wait(10.0)
            assert running.state == DONE
        finally:
            for job in (running, queued):
                job.plan.release.set()
            sched.shutdown()

    def test_cancel_while_running_aborts_solo_run(self):
        sched = Scheduler(workers=1, batching=False)
        try:
            job = make_stub_job("ja", 1)
            sched.submit(job)
            assert job.plan.started.wait(10.0)
            assert job.state == RUNNING
            assert sched.cancel(job) is True
            job.plan.release.set()  # next subproblem boundary sees the flag
            assert job.done_event.wait(10.0)
            assert job.state == CANCELLED
        finally:
            job.plan.release.set()
            sched.shutdown()

    def test_cancel_terminal_job_returns_false(self):
        sched = Scheduler(workers=1, batching=False)
        try:
            job = make_stub_job("ja", 1)
            job.plan.release.set()
            sched.submit(job)
            assert job.done_event.wait(10.0)
            assert sched.cancel(job) is False
        finally:
            sched.shutdown()

    def test_attribution_error_fails_job_and_worker_survives(self):
        class ResultRejectingStore:
            """Final-result writes fail for job ja; the rest succeed."""

            def get(self, key):
                return None

            def put(self, key, arrays):
                if "/ja/" in key and key.endswith("/result"):
                    raise RuntimeError("result write failed")
                return "stub:1"

        class ArrayOutputsPlan(GatedPlan):
            """Gated stub whose finalize() flattens like PlanOutputs."""

            def finalize(self):
                from types import SimpleNamespace

                z = np.zeros(1)
                return SimpleNamespace(
                    coef=z, supports=z, losses=z, winners=z, lambdas=z
                )

        sched = Scheduler(
            workers=1, batching=False, store=ResultRejectingStore()
        )
        try:
            bad = make_stub_job("ja", 1, plan=ArrayOutputsPlan(label="ja"))
            bad.plan.release.set()
            sched.submit(bad)
            assert bad.done_event.wait(10.0)
            assert bad.state == "failed"
            assert "result write failed" in bad.error
            # The worker thread survived the attribution failure.
            ok = make_stub_job("jb", 2, plan=ArrayOutputsPlan(label="jb"))
            ok.plan.release.set()
            sched.submit(ok)
            assert ok.done_event.wait(10.0)
            assert ok.state == DONE
        finally:
            sched.shutdown()

    def test_failed_run_records_error(self):
        class ExplodingPlan(GatedPlan):
            def run_chain(self, stage, tasks, recovered, emit):
                raise RuntimeError("solver blew up")

        sched = Scheduler(workers=1, batching=False)
        try:
            job = make_stub_job("ja", 1, plan=ExplodingPlan(label="ja"))
            sched.submit(job)
            assert job.done_event.wait(10.0)
            assert job.state == "failed"
            assert "solver blew up" in job.error
        finally:
            sched.shutdown()

    def test_fair_share_prefers_starved_tenant(self):
        sched = Scheduler(workers=1, batching=False)
        gate = make_stub_job("hold", 1, tenant="t1")
        b = make_stub_job("jb", 2, tenant="t1")
        c = make_stub_job("jc", 3, tenant="t1")
        d = make_stub_job("jd", 4, tenant="t2")
        try:
            sched.submit(gate)
            assert gate.plan.started.wait(10.0)
            for job in (b, c, d):
                sched.submit(job)
            gate.plan.release.set()
            # t2 has started 0 jobs vs t1's 1: jd must run before jb
            # even though jb was submitted earlier.
            assert d.plan.started.wait(10.0)
            assert b.state == QUEUED
            d.plan.release.set()
            b.plan.release.set()
            c.plan.release.set()
            for job in (b, c, d):
                assert job.done_event.wait(10.0)
        finally:
            for job in (gate, b, c, d):
                job.plan.release.set()
            sched.shutdown()

    def test_shutdown_cancels_pending_jobs(self):
        sched = Scheduler(workers=1, batching=False)
        running = make_stub_job("ja", 1)
        queued = make_stub_job("jb", 2)
        sched.submit(running)
        assert running.plan.started.wait(10.0)
        sched.submit(queued)
        running.plan.release.set()
        sched.shutdown()
        assert queued.state == CANCELLED
        assert running.state == DONE
        with pytest.raises(RuntimeError, match="shut down"):
            sched.submit(make_stub_job("jc", 3))


class TestSchedulerBatching:
    def test_compatible_queued_jobs_share_one_run(self, lasso_problem):
        sched = Scheduler(workers=1, batching=True, max_batch=8)
        hold = make_stub_job("hold", 1)
        jobs = []
        try:
            sched.submit(hold)
            assert hold.plan.started.wait(10.0)
            for i in range(3):
                spec = JobSpec(kind="lasso", data=lasso_problem, config=LASSO_CFG)
                jobs.append(
                    Job(
                        id=f"j{i}",
                        spec=spec,
                        plan=spec.build_plan(),
                        seq=2 + i,
                    )
                )
                sched.submit(jobs[-1])
            hold.plan.release.set()
            for job in jobs:
                assert job.done_event.wait(60.0)
                assert job.state == DONE
                assert job.batch_size == 3
            ref = UoILasso(LASSO_CFG).fit(lasso_problem["X"], lasso_problem["y"])
            for job in jobs:
                assert np.array_equal(job.result.coef, ref.coef_)
        finally:
            hold.plan.release.set()
            sched.shutdown()


class TestService:
    def test_results_bitwise_identical_to_direct_fits(
        self, lasso_problem, var_problem
    ):
        ref_lasso = UoILasso(LASSO_CFG).fit(
            lasso_problem["X"], lasso_problem["y"]
        )
        ref_var = UoIVar(VAR_CFG).fit(var_problem["series"])
        with Service(workers=2) as svc:
            client = ServiceClient(svc)
            ids = []
            for i in range(4):
                if i % 2 == 0:
                    ids.append(
                        client.submit("lasso", lasso_problem, config=LASSO_CFG)
                    )
                else:
                    ids.append(
                        client.submit("var", var_problem, config=VAR_CFG)
                    )
            for i, job_id in enumerate(ids):
                out = client.results(job_id, timeout=120.0)
                if i % 2 == 0:
                    assert np.array_equal(out.coef, ref_lasso.coef_)
                else:
                    assert np.array_equal(out.coef, ref_var.vec_coef_)
                assert client.status(job_id)["state"] == DONE

    def test_duplicate_idempotency_key_returns_original_job_id(
        self, lasso_problem
    ):
        with Service(workers=1) as svc:
            client = ServiceClient(svc)
            first = client.submit(
                "lasso", lasso_problem, config=LASSO_CFG, idempotency_key="job-A"
            )
            again = client.submit(
                "lasso", lasso_problem, config=LASSO_CFG, idempotency_key="job-A"
            )
            assert again == first
            # Same key under another tenant is a different job.
            other = client.submit(
                "lasso",
                lasso_problem,
                config=LASSO_CFG,
                tenant="t2",
                idempotency_key="job-A",
            )
            assert other != first
            assert len(svc.jobs()) == 2

    def test_admission_rejects_bad_specs(self, lasso_problem):
        with Service(workers=1) as svc:
            client = ServiceClient(svc)
            with pytest.raises(AdmissionError):
                client.submit("ridge", lasso_problem)
            with pytest.raises(AdmissionError):
                client.submit("lasso", {"X": lasso_problem["X"]})
            assert svc.jobs() == []  # nothing was enqueued

    def test_unknown_job_id_raises(self):
        with Service(workers=1) as svc:
            with pytest.raises(UnknownJobError):
                svc.status("j999")
            with pytest.raises(UnknownJobError):
                svc.cancel("j999")

    def test_results_timeout(self, lasso_problem):
        svc = Service(workers=1)
        job = make_stub_job("hold", 1)
        try:
            svc.scheduler.submit(job)
            assert job.plan.started.wait(10.0)
            job_id = ServiceClient(svc).submit(
                "lasso", lasso_problem, config=LASSO_CFG
            )
            with pytest.raises(TimeoutError):
                svc.results(job_id, timeout=0.05)
        finally:
            job.plan.release.set()
            svc.shutdown()

    def test_cancelled_job_results_raise(self, lasso_problem):
        svc = Service(workers=1)
        hold = make_stub_job("hold", 1)
        try:
            svc.scheduler.submit(hold)
            assert hold.plan.started.wait(10.0)
            client = ServiceClient(svc)
            job_id = client.submit("lasso", lasso_problem, config=LASSO_CFG)
            assert client.cancel(job_id) is True
            with pytest.raises(JobCancelled):
                client.results(job_id, timeout=10.0)
            assert client.status(job_id)["state"] == CANCELLED
        finally:
            hold.plan.release.set()
            svc.shutdown()

    def test_stream_progress_replays_and_terminates(self, lasso_problem):
        with Service(workers=1) as svc:
            client = ServiceClient(svc)
            job_id = client.submit("lasso", lasso_problem, config=LASSO_CFG)
            events = list(client.stream_progress(job_id))
            assert events[-1]["final"] is True
            assert events[-1]["state"] == DONE
            snapshots = events[:-1]
            # B1 selection + B2 estimation subproblems, in order.
            assert len(snapshots) == 8
            assert snapshots[0]["stage"] == "selection"
            assert snapshots[-1]["stage"] == "estimation"
            assert snapshots[-1]["done"] == snapshots[-1]["total"] == 4

    def test_store_resume_recovers_subproblems(self, tmp_path, lasso_problem):
        ref = UoILasso(LASSO_CFG).fit(lasso_problem["X"], lasso_problem["y"])
        with Service(workers=1, store_root=tmp_path / "store") as svc:
            job_id = ServiceClient(svc).submit(
                "lasso", lasso_problem, config=LASSO_CFG, idempotency_key="fitA"
            )
            first = svc.results(job_id, timeout=120.0)
            assert np.array_equal(first.coef, ref.coef_)
        # A fresh service over the same store: every subproblem of the
        # resubmitted job is served from the replicated store.
        with Service(workers=1, store_root=tmp_path / "store") as svc2:
            client = ServiceClient(svc2)
            job_id = client.submit(
                "lasso", lasso_problem, config=LASSO_CFG, idempotency_key="fitA"
            )
            events = list(client.stream_progress(job_id))
            out = svc2.results(job_id, timeout=120.0)
            assert np.array_equal(out.coef, ref.coef_)
            snapshots = [e for e in events if not e.get("final")]
            assert snapshots and all(e["recovered"] for e in snapshots)

    def test_shared_idempotency_key_never_crosses_tenants(
        self, tmp_path, lasso_problem
    ):
        other = {"X": lasso_problem["X"], "y": -lasso_problem["y"]}
        ref_other = UoILasso(LASSO_CFG).fit(other["X"], other["y"])
        with Service(workers=1, store_root=tmp_path / "store") as svc:
            client = ServiceClient(svc)
            first = client.submit(
                "lasso",
                lasso_problem,
                config=LASSO_CFG,
                tenant="t1",
                idempotency_key="K",
            )
            svc.results(first, timeout=120.0)
            # t2 reuses the key for a *different* fit: it must be
            # computed fresh, never served from t1's records.
            second = client.submit(
                "lasso",
                other,
                config=LASSO_CFG,
                tenant="t2",
                idempotency_key="K",
            )
            events = list(client.stream_progress(second))
            out = svc.results(second, timeout=120.0)
        assert np.array_equal(out.coef, ref_other.coef_)
        snapshots = [e for e in events if not e.get("final")]
        assert snapshots and not any(e["recovered"] for e in snapshots)

    def test_restarted_service_id_collision_not_stale_served(
        self, tmp_path, lasso_problem
    ):
        other = {"X": lasso_problem["X"], "y": -lasso_problem["y"]}
        ref_other = UoILasso(LASSO_CFG).fit(other["X"], other["y"])
        with Service(workers=1, store_root=tmp_path / "store") as svc:
            job_id = ServiceClient(svc).submit(
                "lasso", lasso_problem, config=LASSO_CFG
            )
            svc.results(job_id, timeout=120.0)
        # A fresh service restarts job ids at j1; a different fit
        # landing on the recycled id must not hit the old records.
        with Service(workers=1, store_root=tmp_path / "store") as svc2:
            client = ServiceClient(svc2)
            second = client.submit("lasso", other, config=LASSO_CFG)
            assert second == job_id
            events = list(client.stream_progress(second))
            out = svc2.results(second, timeout=120.0)
        assert np.array_equal(out.coef, ref_other.coef_)
        snapshots = [e for e in events if not e.get("final")]
        assert snapshots and not any(e["recovered"] for e in snapshots)

    def test_manifest_export_is_readable(self, tmp_path, lasso_problem):
        from repro.telemetry import read_manifest

        with Service(workers=1) as svc:
            client = ServiceClient(svc)
            job_id = client.submit("lasso", lasso_problem, config=LASSO_CFG)
            client.results(job_id, timeout=120.0)
            path = svc.export_manifest(tmp_path / "manifest.jsonl")
        man = read_manifest(path)
        assert man["run"]["kind"] == "service"
        assert man["counters"]["service.jobs_submitted"] == 1.0
        assert man["counters"]["service.jobs_done"] == 1.0
        names = {s["name"] for s in man["spans"]}
        assert f"job:{job_id}:run" in names
        assert f"job:{job_id}:queued" in names
        assert man["summary"]["states"] == {"done": 1}
