"""Tests for one-sided RMA windows."""

import numpy as np
import pytest

from repro.simmpi import TimeCategory, Window, run_spmd, SpmdError
from repro.simmpi import timing
from repro.simmpi.machine import LAPTOP
from repro.simmpi.window import RmaError


class TestWindowGetPut:
    def test_get_reads_remote_data(self):
        def prog(comm):
            local = np.arange(10, dtype=float) * (comm.rank + 1)
            win = Window(comm, local)
            peer = (comm.rank + 1) % comm.size
            got = win.get(peer, slice(0, 5))
            win.fence()
            return got

        res = run_spmd(3, prog)
        np.testing.assert_array_equal(res.values[0], np.arange(5) * 2.0)
        np.testing.assert_array_equal(res.values[2], np.arange(5) * 1.0)

    def test_get_returns_private_copy(self):
        def prog(comm):
            local = np.zeros(4)
            win = Window(comm, local)
            win.fence()
            got = win.get(0, slice(None))
            got += 99.0  # must not write through to rank 0's buffer
            win.fence()
            return local.copy()

        res = run_spmd(2, prog)
        np.testing.assert_array_equal(res.values[0], np.zeros(4))

    def test_put_writes_remote(self):
        def prog(comm):
            local = np.zeros(comm.size)
            win = Window(comm, local)
            win.fence()
            win.put(0, comm.rank, np.array(float(comm.rank + 1)))
            win.fence()
            return local.copy()

        res = run_spmd(4, prog)
        np.testing.assert_array_equal(res.values[0], [1.0, 2.0, 3.0, 4.0])

    def test_accumulate_sums_contributions(self):
        def prog(comm):
            local = np.zeros(2)
            win = Window(comm, local)
            win.fence()
            win.accumulate(0, slice(None), np.ones(2))
            win.fence()
            return local.copy()

        res = run_spmd(4, prog)
        np.testing.assert_array_equal(res.values[0], [4.0, 4.0])

    def test_fancy_index_get(self):
        def prog(comm):
            local = np.arange(20, dtype=float).reshape(10, 2) if comm.rank == 0 else None
            win = Window(comm, local)
            got = win.get(0, np.array([7, 1, 3]))
            win.fence()
            return got

        res = run_spmd(2, prog)
        expected = np.arange(20, dtype=float).reshape(10, 2)[[7, 1, 3]]
        np.testing.assert_array_equal(res.values[1], expected)

    def test_rma_charges_distribution_category(self):
        def prog(comm):
            local = np.ones(1000) if comm.rank == 0 else None
            win = Window(comm, local)
            before = comm.clock.breakdown[TimeCategory.DISTRIBUTION]
            win.get(0, slice(None))
            after = comm.clock.breakdown[TimeCategory.DISTRIBUTION]
            win.fence()
            return after - before

        res = run_spmd(2, prog)
        assert all(v > 0 for v in res.values)

    def test_get_from_bufferless_rank_raises(self):
        def prog(comm):
            local = np.ones(3) if comm.rank == 0 else None
            win = Window(comm, local)
            win.fence()
            if comm.rank == 0:
                win.get(1, slice(None))  # rank 1 exposed nothing
            win.fence()

        with pytest.raises(SpmdError, match="exposed no buffer"):
            run_spmd(2, prog)

    def test_bad_target_rank_raises(self):
        def prog(comm):
            win = Window(comm, np.ones(2))
            win.fence()
            win.get(42, slice(None))

        with pytest.raises(SpmdError, match="target_rank"):
            run_spmd(2, prog)

    def test_free_is_collective_and_idempotent_per_rank(self):
        def prog(comm):
            win = Window(comm, np.ones(2))
            win.fence()
            win.free()
            win.free()  # second free is a local no-op
            return True

        res = run_spmd(3, prog)
        assert all(res.values)


class TestWindowEdgeCases:
    def test_accumulate_dtype_mismatch_raises(self):
        def prog(comm):
            local = np.zeros(4, dtype=np.int64)
            win = Window(comm, local)
            win.fence()
            win.accumulate(0, slice(None), np.ones(4, dtype=float))
            win.fence()

        with pytest.raises(SpmdError, match="accumulate dtype mismatch"):
            run_spmd(2, prog)

    def test_accumulate_compatible_dtype_ok(self):
        def prog(comm):
            local = np.zeros(3, dtype=np.float64)
            win = Window(comm, local)
            win.fence()
            win.accumulate(0, slice(None), np.ones(3, dtype=np.float32))
            win.fence()
            return local.copy()

        res = run_spmd(2, prog)
        np.testing.assert_array_equal(res.values[0], [2.0, 2.0, 2.0])

    def test_accumulate_shape_mismatch_raises(self):
        def prog(comm):
            local = np.zeros(4)
            win = Window(comm, local)
            win.fence()
            win.accumulate(0, slice(0, 2), np.ones(3))
            win.fence()

        with pytest.raises(SpmdError, match="accumulate shape mismatch"):
            run_spmd(2, prog)

    def test_get_after_free_raises(self):
        def prog(comm):
            win = Window(comm, np.ones(2))
            win.fence()
            win.free()
            win.get(0, slice(None))

        with pytest.raises(SpmdError, match="after free"):
            run_spmd(2, prog)

    def test_put_after_free_raises(self):
        def prog(comm):
            win = Window(comm, np.ones(2))
            win.fence()
            win.free()
            win.put(0, slice(None), np.zeros(2))

        with pytest.raises(SpmdError, match="after free"):
            run_spmd(2, prog)

    def test_fence_after_free_raises(self):
        def prog(comm):
            win = Window(comm, np.ones(2))
            win.fence()
            win.free()
            win.fence()

        with pytest.raises(SpmdError, match="after free"):
            run_spmd(2, prog)

    def test_rma_error_is_runtime_error(self):
        assert issubclass(RmaError, RuntimeError)

    def test_charge_byte_accounting_uncontended(self):
        """An uncontended Get charges exactly rma_time(nbytes)."""
        nrows = 125

        def prog(comm):
            local = np.ones(nrows) if comm.rank == 0 else None
            win = Window(comm, local)
            win.fence()
            if comm.rank == 1:
                before = comm.clock.breakdown[TimeCategory.DISTRIBUTION]
                got = win.get(0, slice(None))
                charged = comm.clock.breakdown[TimeCategory.DISTRIBUTION] - before
                win.fence()
                return charged, got.nbytes
            win.fence()
            return None

        res = run_spmd(2, prog, machine=LAPTOP)
        charged, nbytes = res.values[1]
        assert nbytes == nrows * 8
        assert charged == pytest.approx(timing.rma_time(LAPTOP, nbytes))

    def test_charge_scales_with_payload_bytes(self):
        """Doubling the Get payload charges the extra per-byte cost."""

        def prog(comm):
            local = np.ones(1000) if comm.rank == 0 else None
            win = Window(comm, local)
            win.fence()
            if comm.rank != 1:
                win.fence()
                return None
            before = comm.clock.breakdown[TimeCategory.DISTRIBUTION]
            win.get(0, slice(0, 250))
            mid = comm.clock.breakdown[TimeCategory.DISTRIBUTION]
            win.get(0, slice(0, 500))
            after = comm.clock.breakdown[TimeCategory.DISTRIBUTION]
            win.fence()
            return mid - before, after - mid

        res = run_spmd(2, prog, machine=LAPTOP)
        small, large = res.values[1]
        latency = timing.rma_time(LAPTOP, 0)
        # Subtracting the fixed wire latency leaves the pure per-byte
        # term, which must double with the payload.
        assert large - latency == pytest.approx(2 * (small - latency))
