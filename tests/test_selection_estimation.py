"""Tests for the intersection (selection) and union (estimation) stages."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.estimation import (
    best_support_per_bootstrap,
    fit_support_ols,
    prediction_loss,
    union_average,
)
from repro.core.selection import (
    intersect_supports,
    support_family,
    support_of,
    unique_supports,
)

bool_masks = hnp.arrays(np.bool_, st.tuples(st.integers(1, 8), st.integers(1, 10)))


class TestSupportOf:
    def test_strict_nonzero(self):
        beta = np.array([0.0, 1e-30, -2.0, 0.0])
        np.testing.assert_array_equal(
            support_of(beta), [False, True, True, False]
        )

    def test_tolerance(self):
        beta = np.array([0.0, 1e-9, -2.0])
        np.testing.assert_array_equal(
            support_of(beta, tol=1e-8), [False, False, True]
        )

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            support_of(np.ones((2, 2)))


class TestIntersectSupports:
    @given(masks=bool_masks)
    def test_matches_logical_and(self, masks):
        np.testing.assert_array_equal(
            intersect_supports(masks), np.logical_and.reduce(masks, axis=0)
        )

    @given(masks=bool_masks)
    def test_order_invariant(self, masks):
        perm = np.random.default_rng(0).permutation(masks.shape[0])
        np.testing.assert_array_equal(
            intersect_supports(masks), intersect_supports(masks[perm])
        )

    @given(masks=bool_masks)
    def test_monotone_more_bootstraps_never_grow_support(self, masks):
        """Adding a bootstrap can only shrink the intersection."""
        full = intersect_supports(masks)
        partial = intersect_supports(masks[:-1]) if masks.shape[0] > 1 else masks[0]
        assert np.all(full <= partial)

    def test_three_dimensional(self):
        masks = np.ones((3, 2, 4), dtype=bool)
        masks[1, 0, 2] = False
        out = intersect_supports(masks)
        assert out.shape == (2, 4)
        assert not out[0, 2] and out[1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            intersect_supports(np.ones(3, dtype=bool))
        with pytest.raises(ValueError):
            intersect_supports(np.ones((0, 2), dtype=bool))


class TestSupportFamily:
    def test_from_betas(self):
        betas = np.zeros((2, 2, 3))
        betas[0, 0] = [1.0, 0.0, 2.0]
        betas[1, 0] = [3.0, 1.0, 4.0]
        betas[:, 1] = 1.0
        fam = support_family(betas)
        np.testing.assert_array_equal(fam[0], [True, False, True])
        np.testing.assert_array_equal(fam[1], [True, True, True])

    def test_validation(self):
        with pytest.raises(ValueError):
            support_family(np.zeros((2, 3)))


class TestUniqueSupports:
    def test_dedupes_preserving_order(self):
        fam = np.array(
            [[True, False], [True, False], [False, True], [True, False]]
        )
        out = unique_supports(fam)
        np.testing.assert_array_equal(out, [[True, False], [False, True]])

    def test_keeps_null_model(self):
        fam = np.array([[False, False], [True, True], [False, False]])
        out = unique_supports(fam)
        assert out.shape == (2, 2)

    @given(masks=bool_masks)
    def test_output_has_no_duplicates(self, masks):
        out = unique_supports(masks)
        seen = {row.tobytes() for row in out}
        assert len(seen) == out.shape[0]


class TestEstimationStage:
    @pytest.fixture
    def problem(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((60, 6))
        beta = np.array([2.0, 0.0, -1.5, 0.0, 0.0, 1.0])
        y = X @ beta + 0.05 * rng.standard_normal(60)
        return X, y, beta

    def test_prediction_loss_zero_for_perfect_fit(self, problem):
        X, y, beta = problem
        assert prediction_loss(X, X @ beta, beta) == 0.0

    def test_fit_support_ols_respects_masks(self, problem):
        X, y, _ = problem
        family = np.array(
            [
                [True, False, True, False, False, True],
                [True, True, True, True, True, True],
                [False, False, False, False, False, False],
            ]
        )
        est = fit_support_ols(X, y, family)
        assert est.shape == (3, 6)
        assert np.all(est[0][~family[0]] == 0.0)
        np.testing.assert_array_equal(est[2], np.zeros(6))

    def test_true_support_wins_on_heldout(self, problem):
        X, y, beta = problem
        true_mask = beta != 0
        family = np.stack([true_mask, np.ones(6, dtype=bool)])
        est_tr = fit_support_ols(X[:40], y[:40], family)
        losses = np.array(
            [[prediction_loss(X[40:], y[40:], est_tr[j]) for j in range(2)]]
        )
        winners = best_support_per_bootstrap(losses)
        # The true sparse model generalizes at least as well as the full
        # model up to noise; either may win narrowly, but the losses must
        # be close and the winner's loss minimal.
        assert losses[0, winners[0]] == losses.min()

    def test_best_support_tie_breaks_to_sparser(self):
        losses = np.array([[1.0, 1.0, 2.0], [3.0, 0.5, 0.5]])
        np.testing.assert_array_equal(
            best_support_per_bootstrap(losses), [0, 1]
        )

    def test_union_average(self):
        winners = np.array([[2.0, 0.0, 0.0], [0.0, 4.0, 0.0]])
        np.testing.assert_array_equal(union_average(winners), [1.0, 2.0, 0.0])

    def test_union_merges_supports(self):
        """A feature in any winner survives — the 'union' of eq. 4."""
        winners = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert np.all(union_average(winners) != 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            best_support_per_bootstrap(np.ones(3))
        with pytest.raises(ValueError):
            union_average(np.ones((0, 3)))
        with pytest.raises(ValueError):
            union_average(np.ones(3))
        with pytest.raises(ValueError):
            fit_support_ols(np.ones((4, 2)), np.ones(4), np.ones(2, dtype=bool))


class TestSoftIntersection:
    def test_frac_one_is_strict_intersection(self):
        rng = np.random.default_rng(0)
        masks = rng.random((6, 10)) < 0.5
        np.testing.assert_array_equal(
            intersect_supports(masks, frac=1.0),
            np.logical_and.reduce(masks, axis=0),
        )

    def test_threshold_counting(self):
        masks = np.array(
            [[True, True, False], [True, False, False], [True, True, False]]
        )
        # frac=0.6 of B=3 -> threshold ceil(1.8)=2 appearances.
        np.testing.assert_array_equal(
            intersect_supports(masks, frac=0.6), [True, True, False]
        )
        # frac just above 2/3 -> threshold 3.
        np.testing.assert_array_equal(
            intersect_supports(masks, frac=0.9), [True, False, False]
        )

    def test_monotone_in_frac(self):
        """Lower frac never removes features a higher frac kept."""
        rng = np.random.default_rng(1)
        masks = rng.random((8, 20)) < 0.6
        prev = intersect_supports(masks, frac=1.0)
        for frac in (0.9, 0.7, 0.5, 0.3):
            cur = intersect_supports(masks, frac=frac)
            assert np.all(prev <= cur)
            prev = cur

    def test_tiny_frac_is_union(self):
        rng = np.random.default_rng(2)
        masks = rng.random((5, 12)) < 0.4
        out = intersect_supports(masks, frac=1e-9)
        np.testing.assert_array_equal(out, masks.any(axis=0))

    def test_frac_validation(self):
        masks = np.ones((2, 3), dtype=bool)
        with pytest.raises(ValueError, match="frac"):
            intersect_supports(masks, frac=0.0)
        with pytest.raises(ValueError, match="frac"):
            intersect_supports(masks, frac=1.5)

    def test_uoi_lasso_soft_intersection_keeps_more(self):
        from repro.core import UoILasso
        from repro.datasets import make_sparse_regression

        ds = make_sparse_regression(
            100, 15, n_informative=3, snr=3.0, rng=np.random.default_rng(5)
        )
        kwargs = dict(
            n_lambdas=8,
            n_selection_bootstraps=10,
            n_estimation_bootstraps=4,
            solver="cd",
            random_state=5,
        )
        strict = UoILasso(**kwargs, intersection_frac=1.0).fit(ds.X, ds.y)
        soft = UoILasso(**kwargs, intersection_frac=0.7).fit(ds.X, ds.y)
        # The soft family is a superset per λ.
        assert np.all(strict.supports_ <= soft.supports_)
