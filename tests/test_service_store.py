"""Tests for the replicated, idempotent results store."""

import json
import random
import shutil
import threading

import numpy as np
import pytest

from repro.service.store import (
    LamportClock,
    ReplicaNode,
    ReplicatedResultsStore,
    WriteOp,
    parse_op_id,
)


def arrays(seed: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {"coef": rng.normal(size=7), "mask": rng.integers(0, 2, size=7)}


class TestOpIds:
    def test_roundtrip(self):
        assert parse_op_id("s0r1:17") == ("s0r1", 17)

    def test_origin_may_contain_colons(self):
        assert parse_op_id("node:a:3") == ("node:a", 3)

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            parse_op_id("no-separator")

    def test_writeop_properties(self):
        op = WriteOp("n1:4", "k", 9, {"x": np.zeros(2)})
        assert op.origin == "n1"
        assert op.seq == 4


class TestLamportClock:
    def test_tick_monotone(self):
        clock = LamportClock()
        assert [clock.tick() for _ in range(3)] == [1, 2, 3]

    def test_observe_merges_max(self):
        clock = LamportClock()
        clock.tick()
        assert clock.observe(10) == 10
        assert clock.observe(4) == 10  # never goes backwards
        assert clock.tick() == 11


class TestReplicaNode:
    def test_local_write_roundtrip_bitwise(self, tmp_path):
        node = ReplicaNode(tmp_path / "n", "n")
        payload = arrays(0)
        op = node.local_write("k", payload)
        assert op.op_id == "n:1"
        got = node.get("k")
        assert set(got) == set(payload)
        for name in payload:
            assert np.array_equal(got[name], payload[name])

    def test_duplicate_apply_suppressed(self, tmp_path):
        a = ReplicaNode(tmp_path / "a", "a")
        b = ReplicaNode(tmp_path / "b", "b")
        op = a.local_write("k", arrays(1))
        assert b.apply(op) is True
        assert b.apply(op) is False  # duplicate delivery
        assert a.apply(op) is False  # echo back to the origin
        assert len(b.log) == 1
        assert b.last_seen == {"a": 1}

    def test_reordered_delivery_within_origin(self, tmp_path):
        a = ReplicaNode(tmp_path / "a", "a")
        b = ReplicaNode(tmp_path / "b", "b")
        ops = [a.local_write(f"k{i}", arrays(i)) for i in range(4)]
        # Deliver out of order; each op still applies exactly once.
        for op in [ops[3], ops[0], ops[2], ops[1]]:
            assert b.apply(op) is True
        for op in ops:
            assert b.apply(op) is False
        assert b.last_seen == {"a": 4}
        assert a.state_digest() == b.state_digest()

    def test_lww_resolves_by_timestamp_then_origin(self, tmp_path):
        a = ReplicaNode(tmp_path / "a", "a")
        b = ReplicaNode(tmp_path / "b", "b")
        older = WriteOp("x:1", "k", 5, arrays(1))
        newer = WriteOp("y:1", "k", 9, arrays(2))
        # Delivery order differs; the winner does not.
        a.apply(older)
        a.apply(newer)
        b.apply(newer)
        b.apply(older)
        for node in (a, b):
            got = node.get("k")
            assert np.array_equal(got["coef"], arrays(2)["coef"])
        assert a.state_digest() == b.state_digest()

    def test_lww_tie_breaks_by_origin(self, tmp_path):
        node = ReplicaNode(tmp_path / "n", "n")
        node.apply(WriteOp("zz:1", "k", 7, arrays(1)))
        node.apply(WriteOp("aa:1", "k", 7, arrays(2)))
        # Same timestamp: the lexicographically larger origin wins,
        # on every replica, regardless of delivery order.
        assert np.array_equal(node.get("k")["coef"], arrays(1)["coef"])

    def test_tombstone_hides_key(self, tmp_path):
        node = ReplicaNode(tmp_path / "n", "n")
        node.local_write("k", arrays(0))
        node.local_write("k", None)
        assert node.get("k") is None
        assert node.keys() == []

    def test_state_persists_across_reopen(self, tmp_path):
        node = ReplicaNode(tmp_path / "n", "n")
        node.local_write("k", arrays(3))
        node.apply(WriteOp("peer:5", "k2", 20, arrays(4)))
        digest = node.state_digest()
        reopened = ReplicaNode(tmp_path / "n", "n")
        assert reopened.last_seen == {"n": 1, "peer": 5}
        assert reopened.clock.time == 20
        assert reopened.state_digest() == digest
        # The next local op continues the sequence (no op_id reuse).
        assert reopened.local_write("k3", arrays(5)).op_id == "n:2"

    def test_journal_replay_recovers_from_missing_snapshot(self, tmp_path):
        node = ReplicaNode(tmp_path / "n", "n")
        for i in range(5):
            node.local_write(f"k{i}", arrays(i))
        node.apply(WriteOp("peer:9", "k1", 40, arrays(9)))
        digest = node.state_digest()
        # Crash before any periodic snapshot: the sidecar is gone but
        # the journal carries everything.
        (tmp_path / "n" / "REPLICA.json").unlink()
        reopened = ReplicaNode(tmp_path / "n", "n")
        assert reopened.state_digest() == digest
        assert reopened.last_seen == {"n": 5, "peer": 9}
        assert len(reopened.log) == 6
        assert reopened.local_write("k9", arrays(7)).op_id == "n:6"

    def test_snapshot_is_amortized_not_per_op(self, tmp_path):
        node = ReplicaNode(tmp_path / "n", "n")
        for i in range(5):
            node.local_write(f"k{i}", arrays(i))
        # Only the creation-time snapshot was written; the per-op
        # durability lives in the O(1)-append journal.
        state = json.loads((tmp_path / "n" / "REPLICA.json").read_text())
        assert state["journal"] == 0
        lines = (tmp_path / "n" / "OPLOG.jsonl").read_text().splitlines()
        assert len(lines) == 5
        reopened = ReplicaNode(tmp_path / "n", "n")
        assert reopened.state_digest() == node.state_digest()

    def test_torn_journal_tail_is_tolerated(self, tmp_path):
        node = ReplicaNode(tmp_path / "n", "n")
        node.local_write("k0", arrays(0))
        node.local_write("k1", arrays(1))
        with open(tmp_path / "n" / "OPLOG.jsonl", "a") as fh:
            fh.write('{"op_id": "n:99", "key"')  # crash mid-append
        reopened = ReplicaNode(tmp_path / "n", "n")
        assert reopened.last_seen == {"n": 2}
        assert len(reopened.log) == 2

    def test_corrupt_state_format_rejected(self, tmp_path):
        node = ReplicaNode(tmp_path / "n", "n")
        node.local_write("k", arrays(0))
        state_path = tmp_path / "n" / "REPLICA.json"
        state = json.loads(state_path.read_text())
        state["format"] = 99
        state_path.write_text(json.dumps(state))
        with pytest.raises(ValueError, match="format"):
            ReplicaNode(tmp_path / "n", "n")


class TestReplicatedResultsStore:
    def test_put_get_roundtrip_bitwise(self, tmp_path):
        store = ReplicatedResultsStore(tmp_path / "s")
        payload = arrays(0)
        op_id = store.put("job1|sel/k0", payload)
        origin, seq = parse_op_id(op_id)
        assert seq == 1
        got = store.get("job1|sel/k0")
        for name in payload:
            assert np.array_equal(got[name], payload[name])
        assert "job1|sel/k0" in store
        assert "absent" not in store

    def test_every_replica_of_the_shard_has_the_write(self, tmp_path):
        store = ReplicatedResultsStore(tmp_path / "s", nshards=2, replication=3)
        store.put("k", arrays(1))
        for node in store.replicas("k"):
            assert np.array_equal(node.get("k")["coef"], arrays(1)["coef"])
        assert store.converged()

    def test_shard_routing_is_stable_and_total(self, tmp_path):
        store = ReplicatedResultsStore(tmp_path / "s", nshards=3)
        keys = [f"k{i}" for i in range(64)]
        shards = [store.shard_of(k) for k in keys]
        assert shards == [store.shard_of(k) for k in keys]
        assert set(shards) <= {0, 1, 2}
        assert len(set(shards)) > 1  # actually partitions

    def test_delete_propagates(self, tmp_path):
        store = ReplicatedResultsStore(tmp_path / "s")
        store.put("k", arrays(0))
        store.delete("k")
        assert store.get("k") is None
        assert store.keys() == []

    def test_read_falls_back_to_peer_replicas(self, tmp_path):
        store = ReplicatedResultsStore(tmp_path / "s", nshards=1, replication=2)
        store.put("k", arrays(2))
        primary = store.nodes[0][0]
        # Simulate a wiped primary: reads degrade to the sibling.
        primary._index.clear()
        got = store.get("k")
        assert np.array_equal(got["coef"], arrays(2)["coef"])

    def test_replay_with_duplicates_and_reordering_is_identical(
        self, tmp_path
    ):
        store = ReplicatedResultsStore(tmp_path / "a", nshards=2)
        for i in range(12):
            store.put(f"job{i % 3}|est/k{i}", arrays(i))
        store.put("job0|est/k0", arrays(99))  # overwrite -> two ops, one key
        store.delete("job2|est/k2")
        reference = store.state_digest()

        ops = store.write_stream()
        corrupted = ops + ops[:5] + ops[::2]  # inject duplicates
        rng = random.Random(7)
        rng.shuffle(corrupted)  # and reorder aggressively

        replayed = ReplicatedResultsStore(tmp_path / "b", nshards=2)
        applied = replayed.replay(corrupted)
        assert applied == len(ops)  # every duplicate was suppressed
        assert replayed.state_digest() == reference
        assert replayed.converged()
        # And the visible values match bitwise.
        assert replayed.keys() == store.keys()
        for key in store.keys():
            a, b = store.get(key), replayed.get(key)
            assert set(a) == set(b)
            for name in a:
                assert np.array_equal(a[name], b[name])
        # Replaying again changes nothing.
        assert replayed.replay(ops) == 0
        assert replayed.state_digest() == reference

    def test_write_stream_survives_reopen(self, tmp_path):
        store = ReplicatedResultsStore(tmp_path / "a", nshards=2)
        for i in range(10):
            store.put(f"k{i}", arrays(i))
        store.put("k0", arrays(50))  # overwrite -> two ops, one key
        store.delete("k3")
        reference = store.state_digest()
        # Restart the whole store: the stream must still be shippable.
        reopened = ReplicatedResultsStore(tmp_path / "a", nshards=2)
        ops = reopened.write_stream()
        assert len(ops) == 12
        fresh = ReplicatedResultsStore(tmp_path / "b", nshards=2)
        assert fresh.replay(ops) == len(ops)
        assert fresh.state_digest() == reference
        assert fresh.keys() == store.keys()

    def test_wiped_replica_reconverges_from_replayed_stream(self, tmp_path):
        store = ReplicatedResultsStore(tmp_path / "s", nshards=1, replication=2)
        for i in range(6):
            store.put(f"k{i}", arrays(i))
        expected = store.keys()
        # Lose one replica entirely, then restart every process.
        shutil.rmtree(tmp_path / "s" / "shard0" / "replica1")
        reopened = ReplicatedResultsStore(
            tmp_path / "s", nshards=1, replication=2
        )
        assert not reopened.converged()
        reopened.replay(reopened.write_stream())
        assert reopened.converged()
        assert reopened.keys() == expected

    def test_reopen_resumes_identical_state(self, tmp_path):
        store = ReplicatedResultsStore(tmp_path / "s")
        for i in range(6):
            store.put(f"k{i}", arrays(i))
        digest = store.state_digest()
        reopened = ReplicatedResultsStore(tmp_path / "s")
        assert reopened.state_digest() == digest
        assert reopened.keys() == store.keys()

    def test_topology_is_pinned(self, tmp_path):
        ReplicatedResultsStore(tmp_path / "s", nshards=2, replication=2)
        with pytest.raises(ValueError, match="topology"):
            ReplicatedResultsStore(tmp_path / "s", nshards=4, replication=2)

    def test_bad_topology_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ReplicatedResultsStore(tmp_path / "s", nshards=0)
        with pytest.raises(ValueError):
            ReplicatedResultsStore(tmp_path / "s2", replication=0)

    @staticmethod
    def _race_writers(store: ReplicatedResultsStore, nwriters: int = 4) -> None:
        barrier = threading.Barrier(nwriters)
        errors: list[BaseException] = []

        def writer(tid: int) -> None:
            try:
                barrier.wait()
                for i in range(8):
                    store.put(f"t{tid}/k{i}", arrays(tid * 100 + i))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(t,)) for t in range(nwriters)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert store.converged()
        assert len(store.keys()) == 8 * nwriters

    def test_concurrent_puts_converge(self, tmp_path):
        store = ReplicatedResultsStore(tmp_path / "s", nshards=2)
        self._race_writers(store)

    def test_concurrent_puts_clean_under_lock_observer(self, tmp_path):
        """The same race with DYN206 enabled: the store's primary ->
        replica -> checkpoint lock topology must produce zero observed
        inversions and no long holds."""
        from repro.analysis.dynamic import LockOrderObserver, use_lock_observer

        observer = LockOrderObserver()
        with use_lock_observer(observer):
            store = ReplicatedResultsStore(tmp_path / "s", nshards=2)
            self._race_writers(store)
        assert observer.findings() == []
