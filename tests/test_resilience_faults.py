"""Tests for fault injection: plans, injectors, and simmpi hooks."""

import numpy as np
import pytest

from repro.resilience import FaultPlan, SimulatedRankFailure
from repro.resilience.faults import CrashFault, DelayFault, TransientGetFault
from repro.simmpi import (
    LAPTOP,
    RmaError,
    SpmdError,
    TimeCategory,
    Window,
    run_spmd,
)


class TestFaultPlanConstruction:
    def test_crash_requires_exactly_one_trigger(self):
        with pytest.raises(ValueError, match="exactly one"):
            CrashFault(rank=0)
        with pytest.raises(ValueError, match="exactly one"):
            CrashFault(rank=0, at_time=1.0, at_collective=3)

    def test_crash_trigger_validation(self):
        with pytest.raises(ValueError):
            CrashFault(rank=0, at_time=-1.0)
        with pytest.raises(ValueError, match="counts from 1"):
            CrashFault(rank=0, at_collective=0)

    def test_delay_and_transient_validation(self):
        with pytest.raises(ValueError):
            DelayFault(rank=0, seconds=-0.1)
        with pytest.raises(ValueError):
            DelayFault(rank=0, seconds=0.1, count=0)
        with pytest.raises(ValueError):
            TransientGetFault(rank=0, count=0)

    def test_plan_chains_and_counts_pending(self):
        plan = (
            FaultPlan()
            .crash(0, at_collective=1)
            .crash(2, at_time=5.0)
            .delay(1, 1e-3)
            .transient_get_failure(1, count=2)
        )
        assert plan.pending() == 2
        assert len(plan.delays) == 1
        assert len(plan.transient_gets) == 1

    def test_reset_rearms_one_shot_faults(self):
        plan = FaultPlan().crash(0, at_collective=1).transient_get_failure(0)
        plan.crashes[0].fired = True
        plan.transient_gets[0].remaining = 0
        plan.reset()
        assert not plan.crashes[0].fired
        assert plan.transient_gets[0].remaining == 1
        assert plan.pending() == 1


class TestCrashContainment:
    def test_crash_at_collective_reported_not_raised(self):
        plan = FaultPlan().crash(1, at_collective=2)

        def prog(comm):
            x = comm.allreduce(1.0)
            x = comm.allreduce(x)
            return comm.allreduce(x)

        res = run_spmd(4, prog, fault_plan=plan)
        assert not res.completed
        assert set(res.failed_ranks) == {1}
        assert isinstance(res.failed_ranks[1], SimulatedRankFailure)
        assert res.failed_ranks[1].rank == 1
        # Survivors unwound before returning.
        assert all(v is None for v in res.values)

    def test_crash_is_one_shot_across_restarts(self):
        plan = FaultPlan().crash(0, at_collective=1)

        def prog(comm):
            return comm.allreduce(comm.rank)

        first = run_spmd(3, prog, fault_plan=plan)
        assert set(first.failed_ranks) == {0}
        second = run_spmd(3, prog, fault_plan=plan)
        assert second.completed
        assert second.values == [3, 3, 3]

    def test_crash_at_virtual_time(self):
        def prog(comm):
            total = 0.0
            for _ in range(50):
                total = comm.allreduce(total + 1.0)
            return total

        clean = run_spmd(2, prog, machine=LAPTOP)
        assert clean.completed
        plan = FaultPlan().crash(1, at_time=0.5 * clean.elapsed)
        res = run_spmd(2, prog, machine=LAPTOP, fault_plan=plan)
        assert set(res.failed_ranks) == {1}
        # It died mid-run, not at the start or end.
        assert 0.0 < res.elapsed < clean.elapsed

    def test_crash_unblocks_subcommunicator_collectives(self):
        # Rank 3 (cell B) dies; ranks 0-1 (cell A) are blocked in a
        # *cell* collective the dead rank never joins.  The abort must
        # cascade into split-off rendezvous or the job deadlocks.
        plan = FaultPlan().crash(3, at_collective=3)

        def prog(comm):
            cell = comm.split(comm.rank // 2)
            for _ in range(100):
                cell.allreduce(1.0)
            comm.barrier()
            return comm.rank

        res = run_spmd(4, prog, fault_plan=plan)
        assert set(res.failed_ranks) == {3}

    def test_delay_slows_only_target_rank(self):
        def prog(comm):
            for _ in range(10):
                comm.allreduce(1.0)
            return comm.clock.now

        clean = run_spmd(2, prog, machine=LAPTOP)
        plan = FaultPlan().delay(1, 1e-3)
        slowed = run_spmd(2, prog, machine=LAPTOP, fault_plan=plan)
        assert slowed.completed
        assert slowed.elapsed >= clean.elapsed + 9e-3
        # The delay is charged as communication time on the laggard.
        comm_time = slowed.clocks[1].breakdown[TimeCategory.COMMUNICATION]
        assert comm_time >= 10e-3

    def test_delay_count_bounds_budget(self):
        def prog(comm):
            for _ in range(10):
                comm.allreduce(1.0)
            return None

        unbounded = run_spmd(2, prog, machine=LAPTOP,
                             fault_plan=FaultPlan().delay(0, 1e-3))
        bounded = run_spmd(2, prog, machine=LAPTOP,
                           fault_plan=FaultPlan().delay(0, 1e-3, count=2))
        assert bounded.elapsed < unbounded.elapsed


class TestSpmdErrorAggregation:
    def test_single_failure_keeps_historical_message(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            return comm.allreduce(1.0)

        with pytest.raises(SpmdError, match="rank 1 failed") as err:
            run_spmd(3, prog)
        assert err.value.rank == 1
        assert isinstance(err.value.original, ValueError)
        assert err.value.failures == [(1, err.value.original)]

    def test_multiple_failures_all_reported(self):
        def prog(comm):
            if comm.rank in (0, 2):
                raise RuntimeError(f"dead-{comm.rank}")
            return comm.allreduce(1.0)

        with pytest.raises(SpmdError) as err:
            run_spmd(4, prog)
        failures = err.value.failures
        assert [r for r, _ in failures] == [0, 2]
        msg = str(err.value)
        assert "2 ranks failed" in msg
        assert "dead-0" in msg and "dead-2" in msg
        # Historical single-failure attributes point at the lowest rank.
        assert err.value.rank == 0

    def test_empty_failures_rejected(self):
        with pytest.raises(ValueError):
            SpmdError([])


class TestTransientGetFaults:
    def test_get_retries_and_returns_correct_data(self):
        plan = FaultPlan().transient_get_failure(1, count=3)

        def prog(comm):
            local = np.arange(8, dtype=float) * (comm.rank + 1)
            win = Window(comm, local)
            got = win.get(0, slice(None))
            win.fence()
            return got, win.retries

        res = run_spmd(2, prog, fault_plan=plan)
        assert res.completed
        data1, retries1 = res.values[1]
        np.testing.assert_array_equal(data1, np.arange(8, dtype=float))
        assert retries1 == 3
        _, retries0 = res.values[0]
        assert retries0 == 0

    def test_failed_attempts_cost_latency(self):
        def prog(comm):
            win = Window(comm, np.zeros(4))
            win.get(0, slice(None))
            win.fence()
            return comm.clock.breakdown[TimeCategory.DISTRIBUTION]

        clean = run_spmd(2, prog, machine=LAPTOP)
        plan = FaultPlan().transient_get_failure(1, count=5)
        faulted = run_spmd(2, prog, machine=LAPTOP, fault_plan=plan)
        assert faulted.values[1] > clean.values[1]

    def test_retry_budget_exhaustion_raises_rma_error(self):
        plan = FaultPlan().transient_get_failure(1, count=100)

        def prog(comm):
            win = Window(comm, np.zeros(4), max_get_retries=4)
            if comm.rank == 1:
                win.get(0, slice(None))
            win.fence()
            return None

        with pytest.raises(SpmdError, match="4 consecutive times") as err:
            run_spmd(2, prog, fault_plan=plan)
        assert isinstance(err.value.original, RmaError)

    def test_target_scoped_fault_spares_other_targets(self):
        plan = FaultPlan().transient_get_failure(2, target=0, count=1)

        def prog(comm):
            win = Window(comm, np.full(3, float(comm.rank)))
            a = win.get(1, slice(None))  # unaffected target
            b = win.get(0, slice(None))  # injected once
            win.fence()
            return a, b, win.retries

        res = run_spmd(3, prog, fault_plan=plan)
        a, b, retries = res.values[2]
        np.testing.assert_array_equal(a, np.ones(3))
        np.testing.assert_array_equal(b, np.zeros(3))
        assert retries == 1

    def test_window_stays_consistent_under_faults(self):
        # Lock/fence semantics: injected Get failures must not leak the
        # target's exposure lock or the active-origin counters, and
        # Put/Get traffic after the faults must still be correct.
        plan = FaultPlan().transient_get_failure(1, count=2).transient_get_failure(
            2, count=2
        )

        def prog(comm):
            local = np.zeros(comm.size)
            win = Window(comm, local)
            win.fence()
            for _ in range(3):
                win.get(0, slice(None))
            win.fence()
            win.put(0, comm.rank, np.array(float(comm.rank + 1)))
            win.fence()
            active = list(win._state.active)
            return local.copy(), active

        res = run_spmd(3, prog, fault_plan=plan)
        assert res.completed
        rank0_buffer, active = res.values[0]
        np.testing.assert_array_equal(rank0_buffer, [1.0, 2.0, 3.0])
        assert active == [0, 0, 0]
