"""Tests for the checkpoint store, sessions, and serial-estimator resume."""

import json
import os

import numpy as np
import pytest

from repro.core import UoILasso, UoIVar
from repro.datasets import make_sparse_regression, make_sparse_var
from repro.resilience import (
    CheckpointCorruption,
    CheckpointPlan,
    CheckpointSession,
    CheckpointStore,
)


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(tmp_path / "ckpt")


class TestCheckpointStore:
    def test_save_load_roundtrip_is_bitwise(self, store):
        beta = np.random.default_rng(0).normal(size=17)
        mask = beta > 0
        store.save("sel/k0/j3", {"beta": beta, "mask": mask})
        rec = store.load("sel/k0/j3")
        assert rec["beta"].tobytes() == beta.tobytes()
        np.testing.assert_array_equal(rec["mask"], mask)

    def test_absent_key_returns_none(self, store):
        assert store.load("nope") is None
        assert "nope" not in store
        assert len(store) == 0

    def test_contains_keys_len_nbytes(self, store):
        store.save("a/k0", {"x": np.ones(3)})
        store.save("b/k1", {"x": np.zeros(5)})
        assert "a/k0" in store and "b/k1" in store
        assert store.keys() == ["a/k0", "b/k1"]
        assert len(store) == 2
        assert store.nbytes("a/k0") > 0

    def test_version_increments_on_every_mutation(self, store):
        v0 = store.version
        store.save("a", {"x": np.ones(1)})
        v1 = store.version
        store.save("a", {"x": np.zeros(1)})  # overwrite is a mutation too
        v2 = store.version
        assert v0 < v1 < v2

    def test_reopen_sees_existing_records(self, store):
        store.save("a", {"x": np.arange(4.0)})
        reopened = CheckpointStore(store.root)
        assert "a" in reopened
        np.testing.assert_array_equal(reopened.load("a")["x"], np.arange(4.0))
        assert reopened.version == store.version

    def test_empty_record_rejected(self, store):
        with pytest.raises(ValueError):
            store.save("a", {})

    def test_corrupted_payload_detected(self, store):
        store.save("a", {"x": np.ones(8)})
        fname = json.load(open(store.root / "MANIFEST.json"))["records"]["a"]["file"]
        path = store.root / "records" / fname
        payload = bytearray(path.read_bytes())
        payload[-1] ^= 0xFF  # bit rot
        path.write_bytes(bytes(payload))
        with pytest.raises(CheckpointCorruption, match="checksum"):
            store.load("a")
        assert store.load("a", verify=False) is not None
        assert store.verify() == ["a"]

    def test_missing_record_file_detected(self, store):
        store.save("a", {"x": np.ones(2)})
        fname = json.load(open(store.root / "MANIFEST.json"))["records"]["a"]["file"]
        os.unlink(store.root / "records" / fname)
        with pytest.raises(CheckpointCorruption, match="missing"):
            store.load("a")
        assert store.verify() == ["a"]

    def test_clear_drops_records_keeps_meta(self, store):
        store.ensure_meta({"kind": "t"})
        store.save("a", {"x": np.ones(2)})
        store.clear()
        assert len(store) == 0
        assert store.load("a") is None
        assert store.meta == {"kind": "t"}

    def test_ensure_meta_pins_and_rejects_mismatch(self, store):
        store.ensure_meta({"kind": "uoi_lasso", "n": 96})
        store.ensure_meta({"kind": "uoi_lasso", "n": 96})  # idempotent
        with pytest.raises(ValueError, match="different run"):
            store.ensure_meta({"kind": "uoi_lasso", "n": 97})

    def test_colliding_key_sanitizations_stay_distinct(self, store):
        store.save("sel/k0:j1", {"x": np.ones(1)})
        store.save("sel/k0!j1", {"x": np.zeros(1)})
        np.testing.assert_array_equal(store.load("sel/k0:j1")["x"], np.ones(1))
        np.testing.assert_array_equal(store.load("sel/k0!j1")["x"], np.zeros(1))


class TestCheckpointSession:
    def test_inactive_session_is_noop(self):
        s = CheckpointSession(None)
        assert not s.active
        s.ensure_meta({"kind": "t"})
        assert s.lookup("a") is None
        s.record("a", {"x": np.ones(1)})
        s.flush()
        assert s.completed == 1 and s.saved == 0 and s.recovered == 0

    def test_cadence_buffers_flushes(self, store):
        plan = CheckpointPlan(store, cadence=3)
        s = CheckpointSession(plan)
        for i in range(5):
            s.record(f"k{i}", {"x": np.full(2, float(i))})
        assert len(store) == 3  # one full batch flushed, 2 buffered
        s.flush()
        assert len(store) == 5
        assert s.saved == 5 and s.completed == 5

    def test_cadence_zero_never_writes(self, store):
        s = CheckpointSession(CheckpointPlan(store, cadence=0))
        s.record("a", {"x": np.ones(1)})
        s.flush()
        assert len(store) == 0

    def test_non_writer_never_writes_but_reads(self, store):
        store.save("a", {"x": np.ones(1)})
        s = CheckpointSession(CheckpointPlan(store), writer=False)
        assert s.lookup("a") is not None
        assert s.recovered == 1
        s.record("b", {"x": np.ones(1)})
        s.flush()
        assert "b" not in store

    def test_resume_false_skips_lookup(self, store):
        store.save("a", {"x": np.ones(1)})
        s = CheckpointSession(CheckpointPlan(store, resume=False))
        assert s.lookup("a") is None
        assert s.recovered == 0

    def test_invalid_cadence_rejected(self, store):
        with pytest.raises(ValueError):
            CheckpointPlan(store, cadence=-1)


class TestSerialResume:
    def test_uoi_lasso_resume_is_bitwise_identical(self, tmp_path):
        ds = make_sparse_regression(
            60, 8, n_informative=3, snr=10.0, rng=np.random.default_rng(3)
        )
        kw = dict(n_lambdas=5, n_selection_bootstraps=3,
                  n_estimation_bootstraps=3, random_state=9)
        plain = UoILasso(**kw).fit(ds.X, ds.y)

        plan = CheckpointPlan(CheckpointStore(tmp_path / "s"))
        first = UoILasso(**kw).fit(ds.X, ds.y, checkpoint=plan)
        assert first.recovered_subproblems_ == 0
        assert first.completed_subproblems_ == 6
        assert first.coef_.tobytes() == plain.coef_.tobytes()

        resumed = UoILasso(**kw).fit(ds.X, ds.y, checkpoint=plan)
        assert resumed.recovered_subproblems_ == 6
        assert resumed.completed_subproblems_ == 0
        assert resumed.coef_.tobytes() == plain.coef_.tobytes()
        np.testing.assert_array_equal(resumed.supports_, plain.supports_)
        assert resumed.losses_.tobytes() == plain.losses_.tobytes()
        np.testing.assert_array_equal(resumed.winners_, plain.winners_)

    def test_uoi_lasso_partial_resume(self, tmp_path):
        ds = make_sparse_regression(
            60, 8, n_informative=3, snr=10.0, rng=np.random.default_rng(3)
        )
        kw = dict(n_lambdas=5, n_selection_bootstraps=4,
                  n_estimation_bootstraps=3, random_state=9)
        plain = UoILasso(**kw).fit(ds.X, ds.y)

        store = CheckpointStore(tmp_path / "s")
        UoILasso(**kw).fit(ds.X, ds.y, checkpoint=CheckpointPlan(store))
        # Lose some records (as a cadence>1 crash would): resume must
        # recompute exactly those and still match bitwise.
        dropped = [k for k in store.keys() if k in
                   ("serial-sel/k2", "serial-est/k1")]
        assert len(dropped) == 2
        full = {k: store.load(k) for k in store.keys() if k not in dropped}
        store.clear()
        for k, rec in full.items():
            store.save(k, rec)
        resumed = UoILasso(**kw).fit(
            ds.X, ds.y, checkpoint=CheckpointPlan(store)
        )
        assert resumed.recovered_subproblems_ == 5
        assert resumed.completed_subproblems_ == 2
        assert resumed.coef_.tobytes() == plain.coef_.tobytes()
        assert resumed.losses_.tobytes() == plain.losses_.tobytes()

    def test_uoi_lasso_meta_mismatch_rejected(self, tmp_path):
        ds = make_sparse_regression(
            40, 6, n_informative=2, snr=10.0, rng=np.random.default_rng(3)
        )
        plan = CheckpointPlan(CheckpointStore(tmp_path / "s"))
        UoILasso(n_lambdas=4, n_selection_bootstraps=2,
                 n_estimation_bootstraps=2).fit(ds.X, ds.y, checkpoint=plan)
        with pytest.raises(ValueError, match="different run"):
            UoILasso(n_lambdas=4, n_selection_bootstraps=3,
                     n_estimation_bootstraps=2).fit(ds.X, ds.y, checkpoint=plan)

    def test_uoi_var_resume_is_bitwise_identical(self, tmp_path):
        ds = make_sparse_var(4, 60, rng=np.random.default_rng(5))
        kw = dict(order=1, n_lambdas=4, n_selection_bootstraps=3,
                  n_estimation_bootstraps=2, random_state=2)
        plain = UoIVar(**kw).fit(ds.series)

        plan = CheckpointPlan(CheckpointStore(tmp_path / "v"))
        UoIVar(**kw).fit(ds.series, checkpoint=plan)
        resumed = UoIVar(**kw).fit(ds.series, checkpoint=plan)
        assert resumed.recovered_subproblems_ == 5
        assert resumed.completed_subproblems_ == 0
        assert resumed.vec_coef_.tobytes() == plain.vec_coef_.tobytes()
        np.testing.assert_array_equal(resumed.supports_, plain.supports_)
        assert resumed.losses_.tobytes() == plain.losses_.tobytes()
        for a, b in zip(resumed.coefs_, plain.coefs_):
            assert a.tobytes() == b.tobytes()


class TestCheckpointStoreConcurrency:
    def test_racing_writers_never_leave_a_torn_entry(self, store):
        """Two writers race the same key behind a barrier: the surviving
        record must be exactly one writer's full payload — named arrays
        from different writers never interleave — and its manifest
        checksum must verify (a torn write would fail ``load``)."""
        import threading

        payloads = {
            tid: {
                "coef": np.full(64, float(tid)),
                "tag": np.array([tid], dtype=np.int64),
            }
            for tid in (1, 2)
        }
        errors = []
        for round_no in range(10):
            key = f"raced/k{round_no}"
            barrier = threading.Barrier(2)

            def write(tid, key=key, barrier=barrier):
                try:
                    barrier.wait(5.0)
                    store.save(key, payloads[tid])
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=write, args=(tid,)) for tid in (1, 2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            got = store.load(key)  # checksum-verified read
            assert got is not None
            winner = int(got["tag"][0])
            assert winner in (1, 2)
            np.testing.assert_array_equal(
                got["coef"], payloads[winner]["coef"]
            )

    def test_reopen_after_racing_writers_is_consistent(self, tmp_path):
        import threading

        store = CheckpointStore(tmp_path / "race")
        barrier = threading.Barrier(4)

        def write(tid):
            barrier.wait(5.0)
            for i in range(8):
                store.save(f"t{tid}/k{i}", {"x": np.full(8, float(tid))})

        threads = [
            threading.Thread(target=write, args=(tid,)) for tid in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        reopened = CheckpointStore(tmp_path / "race")
        assert len(reopened.keys()) == 32
        for key in reopened.keys():
            assert reopened.load(key) is not None
