"""Seeded SHAPE fixture: the blow-ups the shape pass must catch.

``tests/test_analysis_shapes.py`` asserts the exact rule id and line
of every finding below, so edits here must keep the test's line
numbers in sync.  The library never imports this module; the checker
reads it as source.
"""

import numpy as np

from repro.linalg import lasso_cd


def lift_dense(X: np.ndarray, p: int) -> np.ndarray:
    """Dense ``I ⊗ X`` outside ``repro.linalg.kron`` (SHAPE101)."""
    return np.kron(np.eye(p), X)


def allocate_lifted_gram(n: int, p: int) -> np.ndarray:
    """An ``n*p x p`` buffer is ~800 GB at paper scale (SHAPE102)."""
    return np.zeros((n * p, p))


def solve_single(X: np.ndarray, y: np.ndarray, lam: float) -> np.ndarray:
    """float32 silently upcast at the solver boundary (SHAPE103)."""
    Xs = X.astype(np.float32)
    return lasso_cd(Xs, y, lam)
