"""Seeded PLAN fixture: duplicate checkpoint keys, static and live.

``tests/test_analysis_plan.py`` asserts the exact rule id and line of
the static finding below, and constructs :class:`DuplicateKeyPlan` to
assert the runtime side of ``verify_plan`` reports the clobbered
keys.  The static smell is the same bug in waiting: a constant
``Subproblem`` key built inside the task loop.
"""

from repro.engine.plan import Subproblem, UoIPlan


class DuplicateKeyPlan(UoIPlan):
    """Every selection task reuses the same checkpoint key."""

    stages = ("selection",)
    kind = "fixture_duplicate_key"

    def __init__(self, nboot: int = 3) -> None:
        self.B1 = nboot
        self.q = 1

    def meta(self):
        return {"kind": self.kind, "B1": self.B1}

    def chains(self, stage):
        out = []
        for k in range(self.B1):
            task = Subproblem(
                stage=stage,
                bootstrap=k,
                lam_index=None,
                key="sel/k0",
                chain=k,
                pos=0,
            )
            out.append([task])
        return out

    def reduce(self, stage, results):
        pass
