"""Seeded DET fixture: nondeterminism sources reachable from a plan.

``tests/test_analysis_determinism.py`` asserts the exact rule id and
line of every finding below, so edits here must keep the test's line
numbers in sync.  The checker indexes this file standalone; the
``UoIPlan`` base makes ``TimedPlan`` a plan by declaration, rooting
the taint traversal at its ``run_chain``/``reduce``.
"""

import os
import time

import numpy as np

from repro.engine.plan import UoIPlan


class TimedPlan(UoIPlan):
    """A plan whose chain solver breaks the determinism contract."""

    stages = ("selection",)

    def chains(self, stage):
        return []

    def run_chain(self, stage, tasks, recovered, emit):
        started = time.time()
        for task in tasks:
            emit(task, self._solve(task, started))

    def _solve(self, task, started):
        names = os.listdir(".")
        rng = np.random.default_rng()
        seen = {task.key, started}
        total = 0.0
        for item in seen:
            total += float(len(str(item)))
        return {"beta": rng.standard_normal(3), "names": names, "t": total}

    def reduce(self, stage, results):
        pass
