"""Seeded LOCK501 fixture: a deliberate two-lock order inversion.

``transfer`` takes ``_ledger`` then ``_audit``; ``reconcile`` takes
``_audit`` then ``_ledger``.  Two threads interleaving the two paths
deadlock.  The regression test asserts the exact rule IDs and line
numbers of the inner acquisitions, so keep the line layout stable.
"""

import threading


class Accounts:
    def __init__(self) -> None:
        self._ledger = threading.Lock()
        self._audit = threading.Lock()
        self.balance = 0
        self.trail: list[int] = []

    def transfer(self, amount: int) -> None:
        with self._ledger:
            self.balance += amount
            with self._audit:  # line 22: _ledger -> _audit
                self.trail.append(amount)

    def reconcile(self) -> int:
        with self._audit:
            total = sum(self.trail)
            with self._ledger:  # line 28: _audit -> _ledger
                self.balance = total
        return total
