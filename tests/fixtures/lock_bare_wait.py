"""Seeded LOCK502 fixture: ``Condition.wait()`` without a while-predicate.

``take`` waits with a bare ``if`` check — a spurious wakeup or a
competing consumer winning the race leaves it popping from an empty
list.  The regression test asserts the exact rule ID and line number.
"""

import threading


class Mailbox:
    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.items: list[int] = []

    def put(self, item: int) -> None:
        with self.cond:
            self.items.append(item)
            self.cond.notify()

    def take(self) -> int:
        with self.cond:
            if not self.items:
                self.cond.wait()  # line 24: bare wait, no while-predicate
            return self.items.pop(0)
