"""Tests for K-fold cross-validated LASSO."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.linalg import cv_lasso, kfold_indices
from repro.datasets import make_sparse_regression


class TestKFoldIndices:
    @given(n=st.integers(4, 200), k=st.integers(2, 8), seed=st.integers(0, 100))
    @settings(max_examples=40)
    def test_partition_properties(self, n, k, seed):
        k = min(k, n)
        folds = kfold_indices(n, k, np.random.default_rng(seed))
        assert len(folds) == k
        all_test = np.concatenate([test for _, test in folds])
        # Test folds are disjoint and cover [0, n).
        assert len(all_test) == n
        assert set(all_test) == set(range(n))
        for train, test in folds:
            assert set(train).isdisjoint(set(test))
            assert len(train) + len(test) == n

    @given(n=st.integers(4, 200), k=st.integers(2, 8))
    @settings(max_examples=20)
    def test_fold_sizes_balanced(self, n, k):
        k = min(k, n)
        folds = kfold_indices(n, k, np.random.default_rng(0))
        sizes = [len(test) for _, test in folds]
        assert max(sizes) - min(sizes) <= 1

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            kfold_indices(1, 2, rng)
        with pytest.raises(ValueError):
            kfold_indices(10, 1, rng)
        with pytest.raises(ValueError):
            kfold_indices(10, 11, rng)


class TestCvLasso:
    @pytest.fixture(scope="class")
    def fitted(self):
        ds = make_sparse_regression(
            150, 20, n_informative=4, snr=10.0, rng=np.random.default_rng(0)
        )
        res = cv_lasso(ds.X, ds.y, n_lambdas=12, rng=np.random.default_rng(1))
        return ds, res

    def test_selects_interior_lambda(self, fitted):
        ds, res = fitted
        # Strong signal: neither the null model (index 0) nor usually
        # the loosest penalty should win.
        assert 0 < res.lam_index
        assert res.lam == res.lambdas[res.lam_index]

    def test_recovers_support(self, fitted):
        ds, res = fitted
        found = set(np.flatnonzero(res.beta))
        assert set(np.flatnonzero(ds.support)) <= found

    def test_cv_curve_shape(self, fitted):
        _, res = fitted
        assert res.cv_loss.shape == res.cv_se.shape == (12,)
        # Null-model end of the path has the worst loss.
        assert res.cv_loss[0] == pytest.approx(res.cv_loss.max(), rel=0.2)
        assert np.all(res.cv_se >= 0)

    def test_1se_at_least_as_sparse_as_min(self):
        ds = make_sparse_regression(
            120, 30, n_informative=4, rng=np.random.default_rng(3)
        )
        res_min = cv_lasso(ds.X, ds.y, rule="min", rng=np.random.default_rng(4))
        res_1se = cv_lasso(ds.X, ds.y, rule="1se", rng=np.random.default_rng(4))
        assert (res_1se.beta != 0).sum() <= (res_min.beta != 0).sum()
        assert res_1se.lam >= res_min.lam

    def test_deterministic_given_rng(self):
        ds = make_sparse_regression(80, 10, rng=np.random.default_rng(5))
        a = cv_lasso(ds.X, ds.y, rng=np.random.default_rng(6))
        b = cv_lasso(ds.X, ds.y, rng=np.random.default_rng(6))
        np.testing.assert_array_equal(a.beta, b.beta)
        assert a.lam == b.lam

    def test_validation(self):
        ds = make_sparse_regression(30, 5, rng=np.random.default_rng(7))
        with pytest.raises(ValueError, match="rule"):
            cv_lasso(ds.X, ds.y, rule="magic")
        with pytest.raises(ValueError, match="2-D"):
            cv_lasso(ds.y, ds.y)
        with pytest.raises(ValueError, match="incompatible"):
            cv_lasso(ds.X, ds.y[:-1])
