"""Tests for the VAR substrate: process, lag matrices, Granger extraction."""

import numpy as np
import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.var import (
    VARProcess,
    build_lag_matrices,
    companion_matrix,
    edge_list,
    granger_adjacency,
    granger_digraph,
    is_stable,
    network_summary,
    partition_coefficients,
    spectral_radius,
    stack_coefficients,
)


class TestCompanion:
    def test_var1_companion_is_a1(self):
        A = np.array([[0.5, 0.1], [0.0, 0.3]])
        np.testing.assert_array_equal(companion_matrix([A]), A)

    def test_var2_block_structure(self):
        A1 = np.eye(2) * 0.5
        A2 = np.eye(2) * 0.2
        comp = companion_matrix([A1, A2])
        assert comp.shape == (4, 4)
        np.testing.assert_array_equal(comp[:2, :2], A1)
        np.testing.assert_array_equal(comp[:2, 2:], A2)
        np.testing.assert_array_equal(comp[2:, :2], np.eye(2))

    def test_stability_threshold(self):
        assert is_stable([np.eye(3) * 0.9])
        assert not is_stable([np.eye(3) * 1.0])
        assert not is_stable([np.eye(3) * 1.5])

    @given(scale=st.floats(0.05, 0.95))
    @settings(max_examples=20, deadline=None)
    def test_spectral_radius_scales_linearly_var1(self, scale):
        A = np.array([[0.5, 0.2], [0.1, 0.4]])
        base = spectral_radius([A])
        assert spectral_radius([A * scale]) == pytest.approx(base * scale, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            companion_matrix([])
        with pytest.raises(ValueError):
            companion_matrix([np.eye(2), np.eye(3)])


class TestVARProcess:
    def test_simulate_shape_and_finite(self):
        proc = VARProcess([np.eye(3) * 0.5])
        out = proc.simulate(100, np.random.default_rng(0))
        assert out.shape == (100, 3)
        assert np.all(np.isfinite(out))

    def test_stable_process_bounded(self):
        proc = VARProcess([np.eye(2) * 0.8])
        out = proc.simulate(5000, np.random.default_rng(1))
        # Stationary variance of AR(0.8) with unit noise is 1/(1-0.64).
        assert np.abs(out).max() < 20.0

    def test_unstable_process_detected(self):
        proc = VARProcess([np.eye(2) * 1.05])
        assert not proc.stable()

    def test_intercept_shifts_mean(self):
        mu = np.array([4.0, -2.0])
        proc = VARProcess([np.zeros((2, 2))], intercept=mu)
        out = proc.simulate(4000, np.random.default_rng(2))
        np.testing.assert_allclose(out.mean(axis=0), mu, atol=0.1)

    def test_noise_cov_respected(self):
        cov = np.array([[2.0, 0.5], [0.5, 1.0]])
        proc = VARProcess([np.zeros((2, 2))], noise_cov=cov)
        out = proc.simulate(20000, np.random.default_rng(3))
        np.testing.assert_allclose(np.cov(out.T), cov, atol=0.15)

    def test_burn_in_and_initial(self):
        proc = VARProcess([np.eye(2) * 0.5])
        rng = np.random.default_rng(4)
        a = proc.simulate(10, rng, burn_in=0, initial=np.ones((1, 2)) * 100)
        # With zero burn-in the huge initial state is visible at t=0.
        assert np.abs(a[0]).max() > 10

    def test_support(self):
        A = np.array([[0.5, 0.0], [0.3, 0.0]])
        proc = VARProcess([A])
        np.testing.assert_array_equal(proc.support()[0], A != 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            VARProcess([])
        with pytest.raises(ValueError):
            VARProcess([np.eye(2)], intercept=np.ones(3))
        with pytest.raises(ValueError):
            VARProcess([np.eye(2)], noise_cov=np.eye(3))
        with pytest.raises(ValueError):
            VARProcess([np.eye(2)]).simulate(0, np.random.default_rng(0))


class TestLagMatrices:
    def test_shapes(self):
        series = np.arange(30.0).reshape(10, 3)
        Y, X = build_lag_matrices(series, 2)
        assert Y.shape == (8, 3)
        assert X.shape == (8, 6)

    def test_descending_time_order(self):
        """Row 0 of Y is X_N; its regressors are X_{N-1}, ..., X_{N-d}."""
        series = np.arange(20.0).reshape(10, 2)
        Y, X = build_lag_matrices(series, 2)
        np.testing.assert_array_equal(Y[0], series[9])
        np.testing.assert_array_equal(X[0], np.concatenate([series[8], series[7]]))
        np.testing.assert_array_equal(Y[-1], series[2])
        np.testing.assert_array_equal(X[-1], np.concatenate([series[1], series[0]]))

    def test_exact_relation_for_noiseless_var(self):
        """Y = X B with B = stack(A_1..A_d) for deterministic dynamics."""
        rng = np.random.default_rng(0)
        p, d = 3, 2
        A1 = rng.uniform(-0.3, 0.3, (p, p))
        A2 = rng.uniform(-0.2, 0.2, (p, p))
        proc = VARProcess([A1, A2], noise_cov=1e-24 * np.eye(p))
        series = proc.simulate(50, rng, burn_in=10)
        Y, X = build_lag_matrices(series, d)
        B = stack_coefficients([A1, A2])
        np.testing.assert_allclose(Y, X @ B, atol=1e-8)

    def test_intercept_column(self):
        series = np.ones((6, 2))
        Y, X = build_lag_matrices(series, 1, add_intercept=True)
        np.testing.assert_array_equal(X[:, 0], np.ones(5))
        assert X.shape == (5, 3)

    @given(
        seed=st.integers(0, 100),
        p=st.integers(1, 4),
        d=st.integers(1, 3),
        has_mu=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_stack_partition_roundtrip(self, seed, p, d, has_mu):
        rng = np.random.default_rng(seed)
        coefs = [rng.standard_normal((p, p)) for _ in range(d)]
        mu = rng.standard_normal(p) if has_mu else None
        B = stack_coefficients(coefs, mu)
        got_coefs, got_mu = partition_coefficients(B, p, d, has_intercept=has_mu)
        for a, b in zip(coefs, got_coefs):
            np.testing.assert_allclose(a, b)
        if has_mu:
            np.testing.assert_allclose(mu, got_mu)
        # vec roundtrip too
        got2, _ = partition_coefficients(
            B.reshape(-1, order="F"), p, d, has_intercept=has_mu
        )
        for a, b in zip(coefs, got2):
            np.testing.assert_allclose(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_lag_matrices(np.ones(5), 1)
        with pytest.raises(ValueError):
            build_lag_matrices(np.ones((5, 2)), 0)
        with pytest.raises(ValueError):
            build_lag_matrices(np.ones((3, 2)), 3)
        with pytest.raises(ValueError):
            partition_coefficients(np.ones(5), 2, 1)


class TestGranger:
    def test_adjacency_max_over_lags(self):
        A1 = np.array([[0.0, 0.2], [0.0, 0.0]])
        A2 = np.array([[0.0, -0.5], [0.1, 0.0]])
        W = granger_adjacency([A1, A2])
        assert W[0, 1] == pytest.approx(0.5)
        assert W[1, 0] == pytest.approx(0.1)

    def test_digraph_edge_direction(self):
        """A[i, j] != 0 means j -> i."""
        A = np.zeros((3, 3))
        A[2, 0] = 0.7  # node 0 causes node 2
        g = granger_digraph([A], labels=["a", "b", "c"])
        assert g.has_edge("a", "c")
        assert not g.has_edge("c", "a")
        assert g["a"]["c"]["weight"] == pytest.approx(0.7)

    def test_self_loops_dropped_by_default(self):
        A = np.eye(2) * 0.5
        g = granger_digraph([A])
        assert g.number_of_edges() == 0
        g2 = granger_digraph([A], include_self_loops=True)
        assert g2.number_of_edges() == 2

    def test_tolerance_filters_small_weights(self):
        A = np.array([[0.0, 1e-6], [0.5, 0.0]])
        g = granger_digraph([A], tol=1e-3)
        assert g.number_of_edges() == 1

    def test_edge_list_sorted_by_weight(self):
        A = np.array([[0.0, 0.2, 0.9], [0.0, 0.0, 0.0], [0.4, 0.0, 0.0]])
        edges = edge_list([A])
        weights = [w for _, _, w in edges]
        assert weights == sorted(weights, reverse=True)
        assert edges[0][2] == pytest.approx(0.9)

    def test_network_summary_counts(self):
        A = np.array([[0.5, 0.3], [0.0, 0.5]])
        s = network_summary([A])
        assert s == {
            "nodes": 2,
            "possible_edges": 4,
            "edges": 1,
            "self_loops": 2,
            "density": 0.5,
            "max_in_degree": 1,
            "max_out_degree": 1,
        }

    def test_digraph_is_networkx(self):
        g = granger_digraph([np.zeros((2, 2))])
        assert isinstance(g, nx.DiGraph)
        assert g.number_of_nodes() == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            granger_adjacency([])
        with pytest.raises(ValueError):
            granger_digraph([np.zeros((2, 2))], labels=["only-one"])
