"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out
        assert "Table II" in out
        assert "Granger" in out


class TestRun:
    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "=== table1" in out
        assert "278528" in out  # the paper's largest core count
        assert "[paper]" in out

    def test_run_fig4(self, capsys):
        assert main(["run", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "weak scaling" in out
        assert "computation" in out

    def test_unknown_name_rejected(self, capsys):
        with pytest.raises(SystemExit) as e:
            main(["run", "fig99"])
        assert e.value.code != 0

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestMachine:
    def test_default_machine_sheet(self, capsys):
        assert main(["machine"]) == 0
        out = capsys.readouterr().out
        assert "cori-knl" in out
        assert "30.83" in out  # the paper's gemm rate
        assert "cores_per_node" in out

    def test_laptop_machine(self, capsys):
        assert main(["machine", "laptop"]) == 0
        assert "laptop" in capsys.readouterr().out

    def test_unknown_machine_rejected(self):
        with pytest.raises(SystemExit):
            main(["machine", "cray-1"])


class TestEngine:
    def test_lists_every_backend(self, capsys):
        from repro.engine import BACKENDS

        assert main(["engine"]) == 0
        out = capsys.readouterr().out
        for name in BACKENDS:
            assert name in out
        assert "REPRO_ENGINE_BACKEND" in out

    def test_dry_run_enumerates_both_plans(self, capsys):
        assert main(["engine", "--n", "64", "--p", "6"]) == 0
        out = capsys.readouterr().out
        assert "plan serial_uoi_lasso" in out
        assert "plan serial_uoi_var" in out
        assert "serial-sel/k0" in out and "serial-var-sel/k0" in out
        assert "GFLOP" in out and "modeled" in out

    def test_kind_filter_and_machine(self, capsys):
        assert main(
            ["engine", "--kind", "lasso", "--machine", "laptop"]
        ) == 0
        out = capsys.readouterr().out
        assert "serial_uoi_lasso" in out
        assert "serial_uoi_var" not in out
        assert "laptop" in out

    def test_unknown_machine_rejected(self):
        with pytest.raises(SystemExit):
            main(["engine", "--machine", "cray-1"])

    def test_dry_run_prints_chain_counts_and_per_chain_subproblems(
        self, capsys
    ):
        assert main(["engine", "--kind", "lasso", "--n", "32", "--p", "8"]) == 0
        out = capsys.readouterr().out
        # Default config: B1 = B2 = 48 warm-start chains of one
        # subproblem each, run-length encoded as <chains>x<per-chain>.
        assert "chains=48" in out
        assert "per-chain=48x1" in out

    def test_rle_chain_lengths(self):
        from repro.cli import _rle_chain_lengths

        assert _rle_chain_lengths([[1], [1], [1]]) == "3x1"
        assert _rle_chain_lengths([[1, 2], [1, 2], [1]]) == "2x2,1x1"
        assert _rle_chain_lengths([[1], [1, 2], [1]]) == "1x1,1x2,1x1"


class TestServe:
    def test_demo_drives_concurrent_jobs_bitwise(self, capsys, tmp_path):
        assert (
            main(
                [
                    "serve",
                    "--demo",
                    "2",
                    "--workers",
                    "2",
                    "--telemetry-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2/2 jobs done" in out
        assert "bitwise identical to direct fits: True" in out
        assert "manifest" in out
        assert (tmp_path / "service_manifest.jsonl").exists()

    def test_demo_without_batching(self, capsys):
        assert main(["serve", "--demo", "2", "--no-batch"]) == 0
        assert "bitwise identical to direct fits: True" in capsys.readouterr().out


class TestTrace:
    @pytest.fixture(scope="class")
    def recorded(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("trace-cli")
        assert main(
            ["trace", "record", "-o", str(out), "--kind", "lasso",
             "--n", "64", "--p", "8"]
        ) == 0
        return out

    def test_record_exports_manifest_and_trace(self, recorded, capsys):
        manifest = recorded / "manifest-serial_uoi_lasso.jsonl"
        trace = recorded / "trace-serial_uoi_lasso.json"
        assert manifest.exists() and trace.exists()

    def test_summary_renders_breakdown(self, recorded, capsys):
        manifest = recorded / "manifest-serial_uoi_lasso.jsonl"
        assert main(["trace", "summary", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "runtime breakdown" in out
        assert "computation" in out and "data_io" in out
        assert "admm.solves" in out

    def test_validate_accepts_good_trace(self, recorded, capsys):
        trace = recorded / "trace-serial_uoi_lasso.json"
        assert main(["trace", "validate", str(trace)]) == 0
        assert "ok (" in capsys.readouterr().out

    def test_validate_rejects_bad_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "??"}]}')
        assert main(["trace", "validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_chrome_conversion_roundtrip(self, recorded, tmp_path, capsys):
        import json

        from repro.telemetry import validate_chrome_trace

        manifest = recorded / "manifest-serial_uoi_lasso.jsonl"
        out = tmp_path / "out.json"
        assert main(["trace", "chrome", str(manifest), "-o", str(out)]) == 0
        with open(out, "r", encoding="utf-8") as fh:
            assert validate_chrome_trace(json.load(fh)) == []

    def test_diff_of_identical_runs(self, recorded, capsys):
        manifest = str(recorded / "manifest-serial_uoi_lasso.jsonl")
        assert main(["trace", "diff", manifest, manifest]) == 0
        out = capsys.readouterr().out
        assert "delta +0" in out
        assert "breakdown (s)" in out


class TestCheck:
    DIRTY = (
        "def prog(comm):\n"
        "    if comm.rank == 0:\n"
        "        comm.allreduce(1.0)\n"
    )

    def test_lint_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def prog(comm):\n    comm.barrier()\n")
        assert main(["check", "lint", "--path", str(clean)]) == 0
        assert "none" in capsys.readouterr().out

    def test_lint_dirty_file_exits_nonzero(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(self.DIRTY)
        assert main(["check", "lint", "--path", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "SPMD001" in out
        assert "dirty.py:3" in out

    def test_json_format_and_artifact(self, tmp_path, capsys):
        import json

        dirty = tmp_path / "dirty.py"
        dirty.write_text(self.DIRTY)
        artifact = tmp_path / "findings.json"
        assert main(
            ["check", "lint", "--path", str(dirty),
             "--format", "json", "-o", str(artifact)]
        ) == 1
        doc = json.loads(artifact.read_text())
        assert doc["schema"] == 1
        assert doc["count"] == 1
        assert doc["findings"][0]["rule"] == "SPMD001"
        # stdout carries the same JSON document before the artifact note
        out = capsys.readouterr().out
        assert '"SPMD001"' in out

    def test_installed_package_gate_passes(self, capsys):
        # `repro check lint` with no --path lints the shipped library.
        assert main(["check", "lint"]) == 0

    def test_dynamic_battery_passes(self, capsys):
        assert main(["check", "dynamic", "--nranks", "3"]) == 0
        assert "none" in capsys.readouterr().out

    def test_unknown_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", "everything"])


class TestCheckStaticModes:
    DENSE_KRON = (
        "import numpy as np\n"
        "def lift(X, p):\n"
        "    return np.kron(np.eye(p), X)\n"
    )
    TIMED_PLAN = (
        "import time\n"
        "class P(UoIPlan):\n"
        "    def run_chain(self, stage, tasks, recovered, emit):\n"
        "        return time.time()\n"
    )
    BAD_PLAN = (
        "class P(UoIPlan):\n"
        "    def run_chain(self, stage, tasks, recovered, emit):\n"
        "        self.comm.allreduce(1.0)\n"
    )

    def test_shapes_mode_flags_dense_kron(self, tmp_path, capsys):
        f = tmp_path / "lift.py"
        f.write_text(self.DENSE_KRON)
        assert main(["check", "shapes", "--path", str(f)]) == 1
        assert "SHAPE101" in capsys.readouterr().out

    def test_shapes_mode_budget_flag(self, tmp_path, capsys):
        f = tmp_path / "alloc.py"
        f.write_text(
            "import numpy as np\n"
            "def work(rows, cols):\n"
            "    return np.zeros((rows, cols))\n"
        )
        # Unknown dims are tiny (64 x 64 x 8 bytes) but a micro-budget
        # still trips, proving --rank-budget-gib reaches the pass.
        assert main(["check", "shapes", "--path", str(f)]) == 0
        assert main(
            ["check", "shapes", "--path", str(f),
             "--rank-budget-gib", "0.000001"]
        ) == 1
        assert "SHAPE102" in capsys.readouterr().out

    def test_determinism_mode_flags_wall_clock(self, tmp_path, capsys):
        f = tmp_path / "plan.py"
        f.write_text(self.TIMED_PLAN)
        assert main(["check", "determinism", "--path", str(f)]) == 1
        assert "DET301" in capsys.readouterr().out

    def test_plan_mode_flags_world_collective(self, tmp_path, capsys):
        f = tmp_path / "plan.py"
        f.write_text(self.BAD_PLAN)
        assert main(["check", "plan", "--path", str(f)]) == 1
        assert "PLAN404" in capsys.readouterr().out

    def test_static_mode_clean_file_exits_zero(self, tmp_path, capsys):
        f = tmp_path / "clean.py"
        f.write_text("def prog(comm):\n    comm.barrier()\n")
        assert main(["check", "static", "--path", str(f)]) == 0
        assert "none" in capsys.readouterr().out

    def test_sarif_format_on_stdout(self, tmp_path, capsys):
        import json

        f = tmp_path / "dirty.py"
        f.write_text(TestCheck.DIRTY)
        assert main(
            ["check", "lint", "--path", str(f), "--format", "sarif"]
        ) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "SPMD001"

    def test_sarif_out_artifact(self, tmp_path, capsys):
        import json

        f = tmp_path / "dirty.py"
        f.write_text(TestCheck.DIRTY)
        sarif = tmp_path / "findings.sarif"
        assert main(
            ["check", "lint", "--path", str(f), "--sarif-out", str(sarif)]
        ) == 1
        doc = json.loads(sarif.read_text())
        assert doc["runs"][0]["results"][0]["ruleId"] == "SPMD001"
        assert "SARIF" in capsys.readouterr().out

    def test_sarif_out_clean_run_is_valid_empty(self, tmp_path):
        import json

        clean = tmp_path / "clean.py"
        clean.write_text("def prog(comm):\n    comm.barrier()\n")
        sarif = tmp_path / "clean.sarif"
        assert main(
            ["check", "lint", "--path", str(clean),
             "--sarif-out", str(sarif)]
        ) == 0
        doc = json.loads(sarif.read_text())
        assert doc["runs"][0]["results"] == []


class TestExperimentRegistry:
    def test_registry_matches_modules(self):
        import importlib

        for name in EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert callable(module.run), name


class TestStreamCommand:
    RUN = [
        "stream", "run", "--p", "4", "--q", "5", "--b1", "4", "--b2", "3",
        "--window", "30", "--cadence", "8", "--max-windows", "2",
        "--seed", "21",
    ]

    def test_run_prints_window_lines_and_summary(self, capsys):
        assert main(self.RUN) == 0
        out = capsys.readouterr().out
        assert "window   0" in out
        assert "first network" in out
        assert "fitted 2 windows" in out

    def test_run_verify_asserts_cold_identity(self, capsys):
        assert main([*self.RUN, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "bitwise-identical to a cold batch fit" in out

    def test_events_then_replay_and_diff(self, capsys, tmp_path):
        events = tmp_path / "events.jsonl"
        assert main([*self.RUN, "--events", str(events)]) == 0
        capsys.readouterr()

        assert main(["stream", "replay", str(events)]) == 0
        replay = capsys.readouterr().out
        assert "stability" in replay
        assert len(replay.strip().splitlines()) == 3  # header + 2 windows

        assert main(
            ["stream", "diff", str(events), "--base", "0", "--target", "1"]
        ) == 0
        assert "windows 0 -> 1" in capsys.readouterr().out

    def test_replay_missing_events_fails(self, capsys, tmp_path):
        empty = tmp_path / "none.jsonl"
        empty.write_text("")
        assert main(["stream", "replay", str(empty)]) == 1

    def test_finance_source(self, capsys):
        assert main(
            ["stream", "run", "--source", "finance", "--p", "5",
             "--q", "5", "--b1", "3", "--b2", "3", "--window", "30",
             "--cadence", "10", "--max-windows", "2", "--ticks", "50"]
        ) == 0
        assert "fitted 2 windows" in capsys.readouterr().out
