"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out
        assert "Table II" in out
        assert "Granger" in out


class TestRun:
    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "=== table1" in out
        assert "278528" in out  # the paper's largest core count
        assert "[paper]" in out

    def test_run_fig4(self, capsys):
        assert main(["run", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "weak scaling" in out
        assert "computation" in out

    def test_unknown_name_rejected(self, capsys):
        with pytest.raises(SystemExit) as e:
            main(["run", "fig99"])
        assert e.value.code != 0

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestMachine:
    def test_default_machine_sheet(self, capsys):
        assert main(["machine"]) == 0
        out = capsys.readouterr().out
        assert "cori-knl" in out
        assert "30.83" in out  # the paper's gemm rate
        assert "cores_per_node" in out

    def test_laptop_machine(self, capsys):
        assert main(["machine", "laptop"]) == 0
        assert "laptop" in capsys.readouterr().out

    def test_unknown_machine_rejected(self):
        with pytest.raises(SystemExit):
            main(["machine", "cray-1"])


class TestEngine:
    def test_lists_every_backend(self, capsys):
        from repro.engine import BACKENDS

        assert main(["engine"]) == 0
        out = capsys.readouterr().out
        for name in BACKENDS:
            assert name in out
        assert "REPRO_ENGINE_BACKEND" in out

    def test_dry_run_enumerates_both_plans(self, capsys):
        assert main(["engine", "--n", "64", "--p", "6"]) == 0
        out = capsys.readouterr().out
        assert "plan serial_uoi_lasso" in out
        assert "plan serial_uoi_var" in out
        assert "serial-sel/k0" in out and "serial-var-sel/k0" in out
        assert "GFLOP" in out and "modeled" in out

    def test_kind_filter_and_machine(self, capsys):
        assert main(
            ["engine", "--kind", "lasso", "--machine", "laptop"]
        ) == 0
        out = capsys.readouterr().out
        assert "serial_uoi_lasso" in out
        assert "serial_uoi_var" not in out
        assert "laptop" in out

    def test_unknown_machine_rejected(self):
        with pytest.raises(SystemExit):
            main(["engine", "--machine", "cray-1"])


class TestExperimentRegistry:
    def test_registry_matches_modules(self):
        import importlib

        for name in EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert callable(module.run), name
