"""Suite-wide fixtures and the REPRO_THREAD_CHECK session gate.

When the suite runs with ``REPRO_THREAD_CHECK=1`` (the dedicated CI
job), every lock the service/elastic/stream layers create routes
through the process-global
:class:`~repro.analysis.dynamic.LockOrderObserver` — and this hook
turns the whole test session into one long DYN206 run: any observed
lock-order inversion or long-held-lock stall accumulated across every
test fails the session at exit.
"""

import os

import pytest


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    if os.environ.get("REPRO_THREAD_CHECK", "") in ("", "0"):
        return
    from repro.analysis.dynamic import current_lock_observer
    from repro.analysis.findings import format_findings

    observer = current_lock_observer()
    if observer is None:  # pragma: no cover - env flipped mid-session
        return
    findings = observer.findings()
    if findings:
        session.exitstatus = 1
        raise pytest.UsageError(
            "REPRO_THREAD_CHECK: the lock-order observer collected "
            f"{len(findings)} DYN206 finding(s) across the session:\n"
            + format_findings(findings)
        )
