"""Property-based fuzzing of the simulated communicator.

A random program of collectives is generated per example and executed
on a random world size; every operation's result is checked against
the equivalent serial numpy computation, and the virtual clocks are
checked for basic sanity (monotone, identical category sets).  This is
the substrate's broadest correctness net: if any collective's ordering,
reduction order, or copy semantics regresses, some random program will
catch it.

Every fuzzed schedule additionally runs under the dynamic SPMD
checker (:class:`repro.analysis.DynamicChecker`): since all ranks
execute the same program, any collective-matching, RMA-race, or
deadlock finding would be a checker false positive (or a substrate
regression), so the test asserts zero findings.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import DynamicChecker
from repro.simmpi import LAPTOP, MAX, MIN, SUM, run_spmd

OPS = ["allreduce_sum", "allreduce_max", "allreduce_min", "allgather",
       "bcast", "barrier", "gather", "scatter", "alltoall", "iallreduce"]

programs = st.lists(
    st.tuples(st.sampled_from(OPS), st.integers(1, 5)),
    min_size=1,
    max_size=8,
)


def _expected(op, vec_len, size, step):
    """Serial prediction of the collective's result on every rank."""
    contribs = [np.arange(vec_len, dtype=float) + r * 10 + step for r in range(size)]
    if op in ("allreduce_sum", "iallreduce"):
        return [sum(contribs[1:], contribs[0].copy())] * size
    if op == "allreduce_max":
        return [np.maximum.reduce(contribs)] * size
    if op == "allreduce_min":
        return [np.minimum.reduce(contribs)] * size
    if op == "allgather":
        return [contribs] * size
    if op == "bcast":
        return [contribs[0]] * size
    if op == "barrier":
        return [None] * size
    if op == "gather":
        return [contribs if r == 0 else None for r in range(size)]
    if op == "scatter":
        # Root scatters [v + j for j in range(size)].
        return [contribs[0] + r for r in range(size)]
    if op == "alltoall":
        return [[contribs[src] + r for src in range(size)] for r in range(size)]
    raise AssertionError(op)


@settings(max_examples=25, deadline=None)
@given(program=programs, size=st.integers(1, 5))
def test_random_collective_programs(program, size):
    def prog(comm):
        outs = []
        for step, (op, vec_len) in enumerate(program):
            v = np.arange(vec_len, dtype=float) + comm.rank * 10 + step
            if op == "allreduce_sum":
                outs.append(comm.allreduce(v, SUM))
            elif op == "iallreduce":
                req = comm.iallreduce(v, SUM)
                comm.clock.charge_compute(1e-6)
                outs.append(req.wait())
            elif op == "allreduce_max":
                outs.append(comm.allreduce(v, MAX))
            elif op == "allreduce_min":
                outs.append(comm.allreduce(v, MIN))
            elif op == "allgather":
                outs.append(comm.allgather(v))
            elif op == "bcast":
                outs.append(comm.bcast(v if comm.rank == 0 else None, root=0))
            elif op == "barrier":
                comm.barrier()
                outs.append(None)
            elif op == "gather":
                outs.append(comm.gather(v, root=0))
            elif op == "scatter":
                vals = [v + j for j in range(comm.size)] if comm.rank == 0 else None
                outs.append(comm.scatter(vals, root=0))
            elif op == "alltoall":
                outs.append(comm.alltoall([v + j for j in range(comm.size)]))
        return outs

    checker = DynamicChecker()
    res = run_spmd(size, prog, machine=LAPTOP, checker=checker)

    # SPMD programs where every rank runs the same schedule must be
    # free of collective mismatches, RMA races, and deadlocks.
    assert len(checker) == 0, [f.to_dict() for f in checker.findings]

    for step, (op, vec_len) in enumerate(program):
        expected = _expected(op, vec_len, size, step)
        for rank in range(size):
            got = res.values[rank][step]
            want = expected[rank]
            if want is None:
                assert got is None, (op, rank)
            elif isinstance(want, list):
                assert len(got) == len(want), (op, rank)
                for g, w in zip(got, want):
                    np.testing.assert_array_equal(g, w, err_msg=f"{op}@{rank}")
            else:
                np.testing.assert_array_equal(got, want, err_msg=f"{op}@{rank}")

    # Clock sanity: nonnegative, and non-trivial programs advance time.
    for clock in res.clocks:
        assert clock.now >= 0.0
        assert clock.total() == pytest.approx(clock.now)
    if size > 1 and any(op != "barrier" for op, _ in program):
        assert max(c.now for c in res.clocks) > 0.0
