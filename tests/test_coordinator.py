"""Coordinator/transport layer: leases, speculation, failure shapes.

The refactor contract under test: every backend is a
:class:`~repro.engine.coordinator.WorkerTransport` driven by one
:class:`~repro.engine.coordinator.Coordinator`, and nothing about the
split may change the numbers — same seed, bitwise-identical
coefficients on every backend, with hook replay in deterministic
chain order.
"""

import os

import numpy as np
import pytest

from repro.core import UoILasso, UoILassoConfig
from repro.datasets import make_sparse_regression
from repro.engine import (
    ESTIMATION,
    CoordinatedExecutor,
    Coordinator,
    LassoPlan,
    Lease,
    MultiprocessExecutor,
    SerialExecutor,
    SimMpiExecutor,
    SpeculationPolicy,
    TransportEvent,
    WorkerTransport,
    run_plan,
    worker_utilization,
)
from repro.simmpi.executor import SpmdError
from repro.telemetry.recorder import Recorder, use_recorder

LASSO_CFG = UoILassoConfig(
    n_lambdas=5,
    n_selection_bootstraps=3,
    n_estimation_bootstraps=2,
    random_state=12,
)


@pytest.fixture(scope="module")
def lasso_data():
    return make_sparse_regression(
        80, 9, n_informative=3, snr=12.0, rng=np.random.default_rng(31)
    )


# ---------------------------------------------------------------------------
# architecture: executors are coordinator + transport
# ---------------------------------------------------------------------------
class TestLayering:
    def test_executors_are_coordinated(self):
        for executor in (
            SerialExecutor(),
            MultiprocessExecutor(max_workers=2),
            SimMpiExecutor(nranks=2),
        ):
            assert isinstance(executor, CoordinatedExecutor)
            assert isinstance(executor.coordinator, Coordinator)
            assert isinstance(executor.transport, WorkerTransport)
            assert executor.transport.name == executor.name

    def test_transport_shapes(self):
        serial = SerialExecutor().transport
        mp = MultiprocessExecutor(max_workers=2).transport
        simmpi = SimMpiExecutor(nranks=2).transport
        assert (serial.inline, serial.batched, serial.elastic) == (
            True, False, False,
        )
        assert (mp.inline, mp.batched, mp.elastic) == (False, False, False)
        assert (simmpi.inline, simmpi.batched, simmpi.elastic) == (
            False, True, False,
        )

    def test_legacy_constructor_attributes_survive(self):
        mp = MultiprocessExecutor(max_workers=3, start_method="spawn")
        assert (mp.max_workers, mp.start_method) == (3, "spawn")
        sim = SimMpiExecutor(nranks=5)
        assert sim.nranks == 5

    def test_lease_describe(self):
        lease = Lease(
            id=3, chain_index=1, keys=("a", "b"), worker="w0", issued_at=0.0
        )
        assert lease.describe() == "chain 1 [a, b] leased to w0"


# ---------------------------------------------------------------------------
# speculation policy
# ---------------------------------------------------------------------------
class TestSpeculationPolicy:
    def test_underinformed_returns_none(self):
        policy = SpeculationPolicy(min_samples=3)
        assert policy.threshold([]) is None
        assert policy.threshold([0.1, 0.2]) is None

    def test_threshold_scales_percentile(self):
        policy = SpeculationPolicy(
            percentile=50.0, factor=2.0, min_seconds=0.0, min_samples=3
        )
        assert policy.threshold([1.0, 1.0, 1.0]) == pytest.approx(2.0)

    def test_min_seconds_floor(self):
        policy = SpeculationPolicy(
            percentile=50.0, factor=2.0, min_seconds=5.0, min_samples=1
        )
        assert policy.threshold([0.001]) == pytest.approx(5.0)

    def test_disabled_policy(self):
        policy = SpeculationPolicy(enabled=False, min_samples=1)
        assert policy.threshold([1.0, 1.0, 1.0]) is None


# ---------------------------------------------------------------------------
# satellite 2: worker death mid-subproblem -> SpmdError naming the keys
# ---------------------------------------------------------------------------
class _SelfKillingPlan(LassoPlan):
    """First estimation chain kills its own worker process."""

    def run_chain(self, stage, tasks, recovered, emit):
        if stage == ESTIMATION and any(
            task.key.endswith("est/k0") for task in tasks
        ):
            os._exit(13)  # simulates OOM-killer / node loss, not an exception
        super().run_chain(stage, tasks, recovered, emit)


class TestMultiprocessWorkerDeath:
    def test_self_killing_task_surfaces_spmd_error(self, lasso_data):
        plan = _SelfKillingPlan(LASSO_CFG, lasso_data.X, lasso_data.y)
        executor = MultiprocessExecutor(max_workers=2)
        with pytest.raises(SpmdError) as excinfo:
            run_plan(plan, executor)
        failures = excinfo.value.failures
        assert len(failures) >= 1
        _, inner = failures[0]
        assert "died mid-subproblem" in str(inner)
        notes = " ".join(getattr(inner, "__notes__", []))
        assert "backend=multiprocess" in notes
        assert "stage=estimation" in notes
        # The lost lease's subproblem keys are named for triage.
        assert "est/k" in notes


# ---------------------------------------------------------------------------
# deterministic failure attribution across concurrent chains
# ---------------------------------------------------------------------------
class _ExplodingEstimation(LassoPlan):
    def run_chain(self, stage, tasks, recovered, emit):
        if stage == ESTIMATION:
            raise RuntimeError(f"boom:{tasks[0].key}")
        super().run_chain(stage, tasks, recovered, emit)


class TestErrorOrdering:
    def test_lowest_issued_chain_wins(self, lasso_data):
        """Every estimation chain fails; the surfaced error must be the
        first-issued chain's regardless of wall-clock completion order
        (held failures drain in lease-id order)."""
        plan = _ExplodingEstimation(LASSO_CFG, lasso_data.X, lasso_data.y)
        for _ in range(3):
            executor = MultiprocessExecutor(max_workers=2)
            with pytest.raises(RuntimeError, match="boom:") as excinfo:
                run_plan(plan, executor)
            assert "est/k0" in str(excinfo.value)


# ---------------------------------------------------------------------------
# PLAN405 enforcement at lease issue
# ---------------------------------------------------------------------------
class TestLeaseDisjointness:
    def test_issue_rejects_cross_chain_overlap(self):
        from repro.analysis.planver import PlanVerificationError

        coordinator = Coordinator(WorkerTransport())
        active: dict[int, Lease] = {}
        coordinator._issue(0, ("sel/k0", "sel/k1"), "w0", active)
        with pytest.raises(PlanVerificationError, match="PLAN405"):
            coordinator._issue(1, ("sel/k1",), "w1", active)

    def test_issue_allows_speculative_sibling(self):
        coordinator = Coordinator(WorkerTransport())
        active: dict[int, Lease] = {}
        coordinator._issue(0, ("sel/k0",), "w0", active)
        lease = coordinator._issue(
            0, ("sel/k0",), "w1", active, speculative=True
        )
        assert lease.speculative
        assert coordinator.stats["speculative"] == 1


# ---------------------------------------------------------------------------
# stall reporting (DYN205 + the abort)
# ---------------------------------------------------------------------------
class _StuckTransport(WorkerTransport):
    """One worker that accepts a chain and never completes it."""

    name = "stuck"

    def placement(self, chain_index):
        return "stuck-0"

    def open(self, plan, stage, n_pending):
        self._dispatched = False

    def close(self):
        pass

    def workers(self):
        return ["stuck-0"]

    def idle_workers(self):
        return [] if self._dispatched else ["stuck-0"]

    def dispatch(self, lease, chain_index, recovered):
        self._dispatched = True

    def collect(self, timeout):
        return TransportEvent(kind="idle")


class TestStallReporting:
    def test_stall_raises_and_emits_dyn205(self, lasso_data):
        from repro.analysis.dynamic import DynamicChecker

        checker = DynamicChecker()
        plan = LassoPlan(LASSO_CFG, lasso_data.X, lasso_data.y)
        executor = CoordinatedExecutor(
            _StuckTransport(), checker=checker, stall_timeout=0.2, tick=0.01
        )
        with pytest.raises(RuntimeError, match="engine stage stalled"):
            run_plan(plan, executor)
        findings = checker.findings_for("DYN205")
        assert len(findings) == 1
        assert "stuck-0" in findings[0].message
        assert findings[0].context["stalled"]["stuck-0"].startswith("chain 0")


# ---------------------------------------------------------------------------
# telemetry: per-worker lease spans and the utilization summary
# ---------------------------------------------------------------------------
class TestWorkerUtilization:
    def test_multiprocess_run_records_lease_spans(self, lasso_data):
        plan = LassoPlan(LASSO_CFG, lasso_data.X, lasso_data.y)
        recorder = Recorder()
        with use_recorder(recorder):
            run_plan(plan, MultiprocessExecutor(max_workers=2))
        spans = [
            s for s in recorder.spans if s.attrs.get("type") == "worker_lease"
        ]
        # One lease per chain (3 selection + 2 estimation), no faults.
        assert len(spans) == 5
        assert all(s.name.startswith("lease:") for s in spans)
        assert all(s.attrs["outcome"] == "completed" for s in spans)
        assert {s.attrs["worker"] for s in spans} <= {"mp-0", "mp-1"}
        assert recorder.counters["engine.leases.issued"].value == 5

        summary = worker_utilization(recorder)
        assert set(summary["workers"]) <= {"mp-0", "mp-1"}
        for stats in summary["workers"].values():
            assert stats["leases"] >= 1
            assert stats["busy_seconds"] >= 0.0
        assert 0.0 <= summary["utilization"] <= 1.0

    def test_worker_solver_telemetry_merges_home(self, lasso_data):
        """Solver instrumentation fires inside worker processes; the
        coordinator must fold it into the run's recorder (chain order)
        so off-process runs keep the serial telemetry surface."""
        recorder = Recorder()
        with use_recorder(recorder):
            run_plan(
                LassoPlan(LASSO_CFG, lasso_data.X, lasso_data.y),
                MultiprocessExecutor(max_workers=2),
            )
        serial = Recorder()
        with use_recorder(serial):
            run_plan(
                LassoPlan(LASSO_CFG, lasso_data.X, lasso_data.y),
                SerialExecutor(),
            )
        admm = {
            name: value
            for name, value in recorder.counter_values().items()
            if name.startswith("admm.")
        }
        assert admm["admm.solves"] > 0
        # Same chains, once each: solver totals match serial exactly
        # (the parent additionally records engine.leases.* counters).
        assert admm == {
            name: value
            for name, value in serial.counter_values().items()
            if name.startswith("admm.")
        }

    def test_serial_run_records_no_lease_spans(self, lasso_data):
        """The inline (serial) path must keep legacy telemetry exactly:
        one worker, no distribution, no lease bookkeeping."""
        plan = LassoPlan(LASSO_CFG, lasso_data.X, lasso_data.y)
        recorder = Recorder()
        with use_recorder(recorder):
            run_plan(plan, SerialExecutor())
        assert not [
            s for s in recorder.spans if s.attrs.get("type") == "worker_lease"
        ]
        assert worker_utilization(recorder)["workers"] == {}
