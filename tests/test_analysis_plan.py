"""Tests for the PLAN pre-run verifier (``repro.analysis.planver``)."""

import importlib.util
import os
import textwrap
from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis import (
    PlanVerificationError,
    assert_valid_plan,
    plan_lint_file,
    plan_lint_source,
    run_plan_checks,
    verify_plan,
)
from repro.core.config import UoILassoConfig, UoIVarConfig
from repro.engine import (
    SerialExecutor,
    VerifyingExecutor,
    make_executor,
    plan_verification_enabled,
    run_plan,
)
from repro.engine.plan import Subproblem
from repro.engine.plans import LassoPlan, VarPlan

FIXTURE = os.path.join(
    os.path.dirname(__file__), "fixtures", "plan_duplicate_key.py"
)


def _load_fixture_module():
    spec = importlib.util.spec_from_file_location("plan_duplicate_key", FIXTURE)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def plan_lint(code: str):
    return plan_lint_source(textwrap.dedent(code), "prog.py")


class StubPlan:
    """Minimal object satisfying the ``verify_plan`` protocol."""

    stages = ("selection",)

    def __init__(self, chains, B1=None, q=None, grid=None):
        self._chains = chains
        if B1 is not None:
            self.B1 = B1
        if q is not None:
            self.q = q
        if grid is not None:
            self.grid = grid

    def chains(self, stage):
        return self._chains


class OverlappingGrid:
    """A broken grid: every cell claims every bootstrap."""

    pb = 2
    plam = 1

    def owns_bootstrap(self, k):
        return True

    def owns_lambda(self, j):
        return True


def task(bootstrap, lam_index, key, chain, pos):
    return Subproblem("selection", bootstrap, lam_index, key, chain, pos)


def _make_lasso_plan():
    rng = np.random.default_rng(3)
    X = rng.standard_normal((32, 6))
    beta = np.array([1.5, 0.0, -2.0, 0.0, 0.8, 0.0])
    y = X @ beta + 0.05 * rng.standard_normal(32)
    cfg = UoILassoConfig(
        n_lambdas=4,
        n_selection_bootstraps=3,
        n_estimation_bootstraps=3,
        random_state=11,
    )
    return LassoPlan(cfg, X, y)


class TestVerifyPlan:
    def test_duplicate_keys_flagged(self):
        chains = [
            [task(0, None, "sel/k0", 0, 0)],
            [task(1, None, "sel/k0", 1, 0)],
        ]
        findings = verify_plan(StubPlan(chains))
        assert [f.rule for f in findings] == ["PLAN401"]
        assert "sel/k0" in findings[0].message

    def test_empty_chain_flagged(self):
        findings = verify_plan(StubPlan([[]]))
        assert [f.rule for f in findings] == ["PLAN402"]

    def test_mixed_bootstrap_chain_flagged(self):
        chains = [
            [task(0, 0, "sel/k0/j0", 0, 0), task(1, 1, "sel/k1/j1", 0, 1)]
        ]
        findings = verify_plan(StubPlan(chains))
        assert "PLAN402" in [f.rule for f in findings]

    def test_non_monotone_positions_flagged(self):
        chains = [
            [task(0, 0, "sel/k0/j0", 0, 1), task(0, 1, "sel/k0/j1", 0, 0)]
        ]
        findings = verify_plan(StubPlan(chains))
        assert [f.rule for f in findings] == ["PLAN402"]

    def test_non_monotone_lambda_path_flagged(self):
        # Warm starts flow large-to-small penalty in *index* order.
        chains = [
            [task(0, 1, "sel/k0/j1", 0, 0), task(0, 0, "sel/k0/j0", 0, 1)]
        ]
        findings = verify_plan(StubPlan(chains))
        assert [f.rule for f in findings] == ["PLAN402"]

    def test_grid_coverage_gap_flagged(self):
        chains = [[task(0, None, "sel/k0", 0, 0)]]
        findings = verify_plan(StubPlan(chains, B1=2))
        assert [f.rule for f in findings] == ["PLAN403"]
        assert findings[0].context["missing"] == [(1, None)]

    def test_per_lambda_coverage_duplicate_flagged(self):
        chains = [
            [
                task(0, 0, "sel/k0/j0", 0, 0),
                task(0, 0, "sel/k0/j0b", 0, 1),
                task(0, 1, "sel/k0/j1", 0, 2),
            ]
        ]
        findings = verify_plan(StubPlan(chains, B1=1, q=2))
        assert [f.rule for f in findings] == ["PLAN403"]
        assert findings[0].context["duplicated"] == [(0, 0)]

    def test_overlapping_ownership_flagged(self):
        chains = [[task(0, 0, "sel/k0/j0", 0, 0)]]
        findings = verify_plan(
            StubPlan(chains, B1=1, q=1, grid=OverlappingGrid())
        )
        assert "PLAN404" in [f.rule for f in findings]
        owners = findings[-1].context["owners"]
        assert len(owners) == 2  # both b-cells claim the task

    def test_plan_findings_carry_plan_locus(self):
        findings = verify_plan(StubPlan([[]]))
        assert findings[0].file == "<plan:StubPlan>"
        assert findings[0].line == 0
        assert findings[0].source == "plan"

    def test_assert_valid_plan_raises_with_findings(self):
        with pytest.raises(PlanVerificationError) as e:
            assert_valid_plan(StubPlan([[]]))
        assert [f.rule for f in e.value.findings] == ["PLAN402"]
        assert "PLAN402" in str(e.value)

    def test_assert_valid_plan_passes_good_plan(self):
        assert_valid_plan(_make_lasso_plan())


class TestDriverPlansVerify:
    def test_serial_lasso_plan_clean(self):
        assert verify_plan(_make_lasso_plan()) == []

    def test_serial_var_plan_clean(self):
        rng = np.random.default_rng(5)
        series = rng.standard_normal((30, 3))
        cfg = UoIVarConfig(
            order=2,
            lasso=UoILassoConfig(
                n_lambdas=3,
                n_selection_bootstraps=2,
                n_estimation_bootstraps=2,
                random_state=7,
            ),
        )
        assert verify_plan(VarPlan(cfg, series)) == []

    def test_distributed_lasso_plan_clean_on_grid(self):
        from repro.core.parallel import ProcessGrid, _DistLassoPlan
        from repro.simmpi import LAPTOP, run_spmd

        cfg = UoILassoConfig(
            n_lambdas=3,
            n_selection_bootstraps=4,
            n_estimation_bootstraps=4,
            random_state=0,
        )

        def prog(comm):
            grid = ProcessGrid.build(comm, pb=2, plam=2)
            dist = SimpleNamespace(n_rows=24, n_cols=6)
            plan = _DistLassoPlan(
                comm, grid, dist, cfg, "d",
                np.linspace(1.0, 0.1, 3), None, None,
            )
            return [f.rule for f in verify_plan(plan)]

        res = run_spmd(4, prog, machine=LAPTOP)
        assert res.failed_ranks == {}
        assert all(rules == [] for rules in res.values)


class TestSeededFixture:
    def test_static_lint_yields_exact_rule_and_line(self):
        findings = plan_lint_file(FIXTURE)
        assert [(f.rule, f.line) for f in findings] == [("PLAN401", 29)]
        assert findings[0].file == FIXTURE

    def test_runtime_verify_reports_clobbered_keys(self):
        mod = _load_fixture_module()
        findings = verify_plan(mod.DuplicateKeyPlan())
        # Three tasks share one key: the 2nd and 3rd writes clobber.
        assert [f.rule for f in findings] == ["PLAN401", "PLAN401"]
        assert all("sel/k0" in f.message for f in findings)


class TestStaticCongruence:
    def test_world_collective_in_run_chain_flagged(self):
        findings = plan_lint(
            """\
            class P(UoIPlan):
                def run_chain(self, stage, tasks, recovered, emit):
                    self.comm.allreduce(1.0)
            """
        )
        assert [f.rule for f in findings] == ["PLAN404"]

    def test_cell_collective_in_run_chain_clean(self):
        findings = plan_lint(
            """\
            class P(UoIPlan):
                def run_chain(self, stage, tasks, recovered, emit):
                    cell = self.grid.cell
                    cell.allreduce(1.0)
            """
        )
        assert findings == []

    def test_guarded_collective_in_reduce_flagged(self):
        findings = plan_lint(
            """\
            class P(UoIPlan):
                def reduce(self, stage, results):
                    if self.grid.cell.rank == 0:
                        self.comm.allreduce(1.0)
            """
        )
        assert [f.rule for f in findings] == ["PLAN404"]

    def test_accumulate_then_reduce_clean(self):
        findings = plan_lint(
            """\
            class P(UoIPlan):
                def reduce(self, stage, results):
                    total = 0.0
                    if self.grid.cell.rank == 0:
                        total = 1.0
                    self.comm.allreduce(total)
            """
        )
        assert findings == []

    def test_interpolated_key_in_loop_clean(self):
        findings = plan_lint(
            """\
            class P(UoIPlan):
                def chains(self, stage):
                    out = []
                    for k in range(self.B1):
                        out.append([Subproblem(stage, k, None, f"sel/k{k}", k, 0)])
                    return out
            """
        )
        assert findings == []

    def test_non_plan_class_exempt(self):
        findings = plan_lint(
            """\
            class Helper:
                def run_chain(self, stage, tasks, recovered, emit):
                    self.comm.allreduce(1.0)
            """
        )
        assert findings == []


class TestEngineWiring:
    def test_make_executor_verify_wraps(self):
        ex = make_executor("serial", verify=True)
        assert isinstance(ex, VerifyingExecutor)
        assert ex.name == "serial"
        assert isinstance(ex.inner, SerialExecutor)

    def test_make_executor_default_unwrapped(self):
        assert not isinstance(make_executor("serial"), VerifyingExecutor)

    def test_verifying_executor_rejects_bad_plan(self):
        mod = _load_fixture_module()
        with pytest.raises(PlanVerificationError):
            run_plan(mod.DuplicateKeyPlan(), make_executor("serial", verify=True))

    def test_env_gate_rejects_bad_plan(self, monkeypatch):
        mod = _load_fixture_module()
        monkeypatch.setenv("REPRO_PLAN_VERIFY", "1")
        with pytest.raises(PlanVerificationError):
            run_plan(mod.DuplicateKeyPlan(), SerialExecutor())

    def test_env_gate_falsy_values_disable(self, monkeypatch):
        for value in ("", "0", "false", "no"):
            monkeypatch.setenv("REPRO_PLAN_VERIFY", value)
            assert plan_verification_enabled() is False
        monkeypatch.setenv("REPRO_PLAN_VERIFY", "1")
        assert plan_verification_enabled() is True

    def test_verified_run_bitwise_identical(self):
        base = run_plan(_make_lasso_plan(), SerialExecutor(), verify=False)
        verified = run_plan(_make_lasso_plan(), SerialExecutor(), verify=True)
        assert base.coef.tobytes() == verified.coef.tobytes()
        assert base.losses.tobytes() == verified.losses.tobytes()

    def test_verified_run_through_wrapper_identical(self):
        base = run_plan(_make_lasso_plan(), SerialExecutor(), verify=False)
        wrapped = run_plan(
            _make_lasso_plan(), make_executor("serial", verify=True)
        )
        assert base.coef.tobytes() == wrapped.coef.tobytes()


class TestRepoGate:
    def test_engine_and_core_check_clean(self):
        # The acceptance gate: the static PLAN lint over engine+core
        # plus verify_plan over the reference driver plans is clean.
        assert run_plan_checks() == []


class TestLeaseDisjointness:
    """PLAN405: runtime lease tables must partition outstanding work."""

    @staticmethod
    def _lease(chain_index, keys, worker, speculative=False):
        return SimpleNamespace(
            chain_index=chain_index,
            keys=tuple(keys),
            worker=worker,
            speculative=speculative,
        )

    def test_disjoint_leases_clean(self):
        from repro.analysis.planver import verify_lease_disjointness

        leases = [
            self._lease(0, ["sel/k0", "sel/k1"], "w0"),
            self._lease(1, ["sel/k2"], "w1"),
        ]
        assert verify_lease_disjointness(leases) == []

    def test_double_primary_flagged(self):
        from repro.analysis.planver import verify_lease_disjointness

        leases = [
            self._lease(0, ["sel/k0"], "w0"),
            self._lease(0, ["sel/k0"], "w1"),
        ]
        findings = verify_lease_disjointness(leases)
        assert [f.rule for f in findings] == ["PLAN405"]
        assert "double-primary" in findings[0].message
        assert findings[0].file == "<coordinator>"

    def test_cross_chain_overlap_flagged_even_speculative(self):
        from repro.analysis.planver import verify_lease_disjointness

        leases = [
            self._lease(0, ["sel/k0"], "w0"),
            self._lease(1, ["sel/k0"], "w1", speculative=True),
        ]
        findings = verify_lease_disjointness(leases)
        assert [f.rule for f in findings] == ["PLAN405"]
        assert "cross-chain" in findings[0].message

    def test_same_chain_speculative_duplicate_exempt(self):
        from repro.analysis.planver import verify_lease_disjointness

        leases = [
            self._lease(0, ["sel/k0"], "w0"),
            self._lease(0, ["sel/k0"], "w1", speculative=True),
        ]
        assert verify_lease_disjointness(leases) == []

    def test_assert_raises_with_rule_id(self):
        from repro.analysis.planver import assert_disjoint_leases

        leases = [
            self._lease(0, ["sel/k0"], "w0"),
            self._lease(1, ["sel/k0"], "w1"),
        ]
        with pytest.raises(PlanVerificationError, match="PLAN405"):
            assert_disjoint_leases(leases)

    def test_rule_registered(self):
        from repro.analysis.rules import get_rule

        rule = get_rule("PLAN405")
        assert rule.name == "lease-disjointness"
        assert rule.severity == "error"
