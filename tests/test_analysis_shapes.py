"""Tests for the SHAPE symbolic shape/memory pass (``repro.analysis.shapes``)."""

import os
import textwrap

from repro.analysis import MemoryBudget, shape_check_paths, shape_check_source
from repro.analysis.shapes import DEFAULT_BINDINGS, Dim, shape_check_file

FIXTURE = os.path.join(
    os.path.dirname(__file__), "fixtures", "shape_dense_kron.py"
)


def check(code: str, filename: str = "prog.py", **kwargs):
    return shape_check_source(textwrap.dedent(code), filename, **kwargs)


class TestDimAlgebra:
    def test_monomial_product(self):
        d = Dim(2.0, ("n",)) * Dim(3.0, ("p",))
        assert d.coeff == 6.0
        assert d.syms == ("n", "p")

    def test_evaluate_uses_reference_bindings(self):
        d = Dim(1.0, ("n", "p"))
        assert d.evaluate(DEFAULT_BINDINGS) == 100_000.0 * 1_000.0

    def test_evaluate_case_insensitive_with_default(self):
        assert Dim(1.0, ("N",)).evaluate(DEFAULT_BINDINGS) == 100_000.0
        # Unknown symbols stay deliberately small: no false positives.
        assert Dim(1.0, ("zz",)).evaluate(DEFAULT_BINDINGS) == 64.0

    def test_str_rendering(self):
        assert str(Dim(1.0, ("n", "p"))) == "n*p"
        assert str(Dim(3.0, ("p",))) == "3*p"
        assert str(Dim(7.0)) == "7"


class TestDenseKron:
    def test_np_kron_of_eye_flagged(self):
        findings = check(
            """\
            import numpy as np

            def lift(X, p):
                return np.kron(np.eye(p), X)
            """
        )
        assert [f.rule for f in findings] == ["SHAPE101"]
        assert findings[0].line == 4

    def test_identity_kron_dense_flagged(self):
        findings = check(
            """\
            from repro.linalg import identity_kron

            def lift(X, p):
                return identity_kron(X, p, sparse=False)
            """
        )
        assert [f.rule for f in findings] == ["SHAPE101"]

    def test_identity_kron_sparse_default_clean(self):
        findings = check(
            """\
            from repro.linalg import identity_kron

            def lift(X, p):
                return identity_kron(X, p)
            """
        )
        assert findings == []

    def test_toarray_on_lifted_flagged(self):
        findings = check(
            """\
            from repro.linalg import IdentityKronOperator

            def lift(X, p):
                op = IdentityKronOperator(X, p)
                return op.toarray()
            """
        )
        assert [f.rule for f in findings] == ["SHAPE101"]
        assert findings[0].line == 5

    def test_sanctioned_module_exempt(self):
        code = """\
        import numpy as np

        def lift(X, p):
            return np.kron(np.eye(p), X)
        """
        findings = check(code, filename="src/repro/linalg/kron.py")
        assert findings == []

    def test_suppression(self):
        findings = check(
            """\
            import numpy as np

            def lift(X, p):
                return np.kron(np.eye(p), X)  # repro: ignore[SHAPE101]
            """
        )
        assert findings == []


class TestMemoryBudget:
    def test_paper_scale_allocation_flagged(self):
        findings = check(
            """\
            import numpy as np

            def work(n, p):
                buf = np.zeros((n * p, p))
                return buf
            """
        )
        assert [f.rule for f in findings] == ["SHAPE102"]
        assert findings[0].line == 4
        assert findings[0].context["bytes"] == 8.0 * 100_000 * 1_000 * 1_000

    def test_shape_binding_from_unpacking(self):
        # `n, p = X.shape` seeds the dims the allocation is sized by.
        findings = check(
            """\
            import numpy as np

            def work(X):
                n, p = X.shape
                return np.empty((n, p * p))
            """
        )
        assert [f.rule for f in findings] == ["SHAPE102"]

    def test_unknown_dims_never_flagged(self):
        findings = check(
            """\
            import numpy as np

            def work(rows, cols):
                return np.zeros((rows, cols))
            """
        )
        assert findings == []

    def test_float32_halves_the_bill(self):
        code = """\
        import numpy as np

        def work(n, p):
            return np.zeros((n, p), dtype=np.float32)
        """
        # n x p float32 is 0.4 GB: over a tiny budget, under a big one.
        tight = MemoryBudget(per_rank_bytes=2**20)
        roomy = MemoryBudget(per_rank_bytes=2**30)
        assert [f.rule for f in check(code, budget=tight)] == ["SHAPE102"]
        assert check(code, budget=roomy) == []

    def test_eye_of_paper_scale_dim_flagged(self):
        findings = check(
            """\
            import numpy as np

            def work(n):
                return np.eye(n)
            """
        )
        assert [f.rule for f in findings] == ["SHAPE102"]


class TestDtypeDrift:
    def test_mixed_dtype_matmul_flagged(self):
        findings = check(
            """\
            import numpy as np

            def work(m, k):
                a = np.zeros((m, k), dtype=np.float32)
                b = np.zeros((k, m), dtype=np.float64)
                return a @ b
            """
        )
        assert [f.rule for f in findings] == ["SHAPE103"]
        assert findings[0].line == 6

    def test_matching_dtypes_clean(self):
        findings = check(
            """\
            import numpy as np

            def work(m, k):
                a = np.zeros((m, k), dtype=np.float32)
                b = np.zeros((k, m), dtype=np.float32)
                return a @ b
            """
        )
        assert findings == []

    def test_float32_across_solver_boundary_flagged(self):
        findings = check(
            """\
            import numpy as np
            from repro.linalg import lasso_cd

            def work(X, y, lam):
                Xs = np.asarray(X, dtype=np.float32)
                return lasso_cd(Xs, y, lam)
            """
        )
        assert [f.rule for f in findings] == ["SHAPE103"]
        assert findings[0].context["boundary"] == "lasso_cd"

    def test_astype_tracks_dtype(self):
        findings = check(
            """\
            import numpy as np
            from repro.linalg import ols_on_support

            def work(X, y, support):
                Xs = X.astype(np.float32)
                Xd = Xs.astype(np.float64)
                return ols_on_support(Xd, y, support)
            """
        )
        assert findings == []


class TestSeededFixture:
    def test_fixture_yields_exact_rules_and_lines(self):
        findings = shape_check_file(FIXTURE)
        assert [(f.rule, f.line) for f in findings] == [
            ("SHAPE101", 16),
            ("SHAPE102", 21),
            ("SHAPE103", 27),
        ]
        assert all(f.file == FIXTURE for f in findings)


class TestRepoGate:
    def test_numeric_subsystems_check_clean(self):
        # The acceptance gate: repro.linalg + repro.distribution carry
        # zero SHAPE findings at the default 4 GiB budget.
        assert shape_check_paths() == []
