"""Execution-engine contract: backends, plans, hooks, attribution."""

import numpy as np
import pytest

from repro.core import UoILasso, UoILassoConfig, UoIVar, UoIVarConfig
from repro.datasets import make_sparse_regression, make_sparse_var
from repro.engine import (
    BACKENDS,
    ESTIMATION,
    SELECTION,
    EngineHook,
    HookList,
    LassoPlan,
    MultiprocessExecutor,
    ProgressHook,
    RecordingHook,
    SerialExecutor,
    SimMpiExecutor,
    VarPlan,
    annotate_failure,
    default_executor,
    make_executor,
    run_plan,
)

LASSO_CFG = UoILassoConfig(
    n_lambdas=5,
    n_selection_bootstraps=3,
    n_estimation_bootstraps=2,
    random_state=12,
)
VAR_CFG = UoIVarConfig(
    order=1,
    lasso=UoILassoConfig(
        n_lambdas=4,
        n_selection_bootstraps=2,
        n_estimation_bootstraps=2,
        random_state=21,
    ),
)


@pytest.fixture(scope="module")
def lasso_data():
    return make_sparse_regression(
        80, 9, n_informative=3, snr=12.0, rng=np.random.default_rng(31)
    )


@pytest.fixture(scope="module")
def var_series():
    return make_sparse_var(3, 48, rng=np.random.default_rng(32)).series


def _executors():
    return [
        ("serial", SerialExecutor()),
        ("multiprocess", MultiprocessExecutor(max_workers=2)),
        ("simmpi", SimMpiExecutor(nranks=2)),
    ]


class TestCrossBackendEquivalence:
    """The tentpole invariant: every backend produces the same bits."""

    @pytest.mark.parametrize("name,executor", _executors())
    def test_lasso_matrix(self, lasso_data, name, executor):
        ref = UoILasso(LASSO_CFG).fit(lasso_data.X, lasso_data.y)
        got = UoILasso(LASSO_CFG).fit(
            lasso_data.X, lasso_data.y, executor=executor
        )
        assert got.coef_.tobytes() == ref.coef_.tobytes()
        assert got.losses_.tobytes() == ref.losses_.tobytes()
        np.testing.assert_array_equal(got.supports_, ref.supports_)
        np.testing.assert_array_equal(got.winners_, ref.winners_)

    @pytest.mark.parametrize("name,executor", _executors())
    def test_var_matrix(self, var_series, name, executor):
        ref = UoIVar(VAR_CFG).fit(var_series)
        got = UoIVar(VAR_CFG).fit(var_series, executor=executor)
        assert got.vec_coef_.tobytes() == ref.vec_coef_.tobytes()
        assert got.losses_.tobytes() == ref.losses_.tobytes()
        np.testing.assert_array_equal(got.supports_, ref.supports_)
        for a, b in zip(got.coefs_, ref.coefs_):
            assert a.tobytes() == b.tobytes()


class TestPlanEnumeration:
    def test_lasso_describe_counts(self, lasso_data):
        plan = LassoPlan(LASSO_CFG, lasso_data.X, lasso_data.y)
        desc = plan.describe()
        assert desc["kind"] == "serial_uoi_lasso"
        assert desc["stages"][SELECTION]["chains"] == 3
        assert desc["stages"][SELECTION]["subproblems"] == 3
        assert desc["stages"][ESTIMATION]["subproblems"] == 2
        assert desc["subproblems"] == 5

    def test_var_describe_counts(self, var_series):
        plan = VarPlan(VAR_CFG, var_series)
        desc = plan.describe()
        assert desc["stages"][SELECTION]["subproblems"] == 2
        assert desc["stages"][ESTIMATION]["subproblems"] == 2

    def test_legacy_checkpoint_keys(self, lasso_data, var_series):
        lp = LassoPlan(LASSO_CFG, lasso_data.X, lasso_data.y)
        assert lp.chains(SELECTION)[0][0].key == "serial-sel/k0"
        assert lp.chains(ESTIMATION)[1][0].key == "serial-est/k1"
        vp = VarPlan(VAR_CFG, var_series)
        assert vp.chains(SELECTION)[0][0].key == "serial-var-sel/k0"
        assert vp.chains(ESTIMATION)[0][0].key == "serial-var-est/k0"

    def test_flops_estimate_positive(self, lasso_data):
        plan = LassoPlan(LASSO_CFG, lasso_data.X, lasso_data.y)
        flops = plan.estimate_flops()
        assert flops[SELECTION] > 0.0
        assert flops[ESTIMATION] > 0.0

    def test_input_validation_messages(self):
        with pytest.raises(ValueError, match="X must be 2-D"):
            LassoPlan(LASSO_CFG, np.zeros(4), np.zeros(4))
        with pytest.raises(ValueError, match="incompatible with X"):
            LassoPlan(LASSO_CFG, np.zeros((4, 2)), np.zeros(5))


class TestHookDispatch:
    def test_recording_hook_order(self, lasso_data):
        hook = RecordingHook()
        plan = LassoPlan(LASSO_CFG, lasso_data.X, lasso_data.y)
        run_plan(plan, SerialExecutor(), [hook])
        kinds = [e[0] for e in hook.events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        # every subproblem reported exactly once, none recovered
        done = [e for e in hook.events if e[0] == "done"]
        assert len(done) == plan.describe()["subproblems"]
        assert all(not e[2] for e in done)
        # stage_end fires after that stage's last done event
        stage_ends = [i for i, e in enumerate(hook.events) if e[0] == "stage_end"]
        assert len(stage_ends) == 2
        sel_done = [
            i
            for i, e in enumerate(hook.events)
            if e[0] == "done" and e[1].startswith("serial-sel/")
        ]
        assert max(sel_done) < stage_ends[0]

    def test_progress_hook_counts(self, var_series):
        seen = []
        hook = ProgressHook(lambda stage, done, total: seen.append((stage, done, total)))
        plan = VarPlan(VAR_CFG, var_series)
        run_plan(plan, SerialExecutor(), [hook])
        assert hook.done == hook.totals == {SELECTION: 2, ESTIMATION: 2}
        assert (SELECTION, 2, 2) in seen and (ESTIMATION, 2, 2) in seen


class _TaggedHook(EngineHook):
    """Appends (tag, event, detail) to a shared log for order assertions."""

    def __init__(self, tag, log, *, serves=()):
        self.tag = tag
        self.log = log
        self.serves = dict(serves)

    def lookup(self, task):
        self.log.append((self.tag, "lookup", task.key))
        return self.serves.get(task.key)

    def on_subproblem_done(self, task, payload, *, recovered):
        self.log.append((self.tag, "done", task.key, recovered))

    def on_stage_end(self, stage, plan):
        self.log.append((self.tag, "stage_end", stage))


class TestHookListOrdering:
    """Satellite contract: the composite semantics TelemetryHook rides on."""

    def _task(self, plan):
        return plan.chains(SELECTION)[0][0]

    def test_lookup_first_non_none_wins(self, lasso_data):
        plan = LassoPlan(LASSO_CFG, lasso_data.X, lasso_data.y)
        task = self._task(plan)
        log = []
        first = _TaggedHook("a", log, serves={task.key: {"hit": "a"}})
        second = _TaggedHook("b", log, serves={task.key: {"hit": "b"}})
        hooks = HookList([first, second])
        assert hooks.lookup(task) == {"hit": "a"}
        # The second child is never even consulted once the first hit.
        assert log == [("a", "lookup", task.key)]

    def test_lookup_falls_through_none(self, lasso_data):
        plan = LassoPlan(LASSO_CFG, lasso_data.X, lasso_data.y)
        task = self._task(plan)
        log = []
        first = _TaggedHook("a", log)  # serves nothing
        second = _TaggedHook("b", log, serves={task.key: {"hit": "b"}})
        hooks = HookList([first, second])
        assert hooks.lookup(task) == {"hit": "b"}
        assert [e[0] for e in log] == ["a", "b"]

    def test_done_and_stage_end_fire_on_every_child_in_order(self, lasso_data):
        plan = LassoPlan(LASSO_CFG, lasso_data.X, lasso_data.y)
        task = self._task(plan)
        log = []
        hooks = HookList([_TaggedHook("a", log), _TaggedHook("b", log)])
        hooks.on_subproblem_done(task, {}, recovered=True)
        hooks.on_stage_end(SELECTION, plan)
        assert log == [
            ("a", "done", task.key, True),
            ("b", "done", task.key, True),
            ("a", "stage_end", SELECTION),
            ("b", "stage_end", SELECTION),
        ]

    def test_recovery_still_notifies_later_children(self, lasso_data):
        """A child that recovers a task does not swallow anyone's events.

        This is exactly what TelemetryHook depends on: registered
        *after* CheckpointHook, it must still see every subproblem —
        with ``recovered=True`` for the ones the checkpoint served.
        """
        import tempfile

        from repro.resilience.checkpoint import CheckpointPlan, CheckpointStore

        plan = LassoPlan(LASSO_CFG, lasso_data.X, lasso_data.y)
        total = plan.describe()["subproblems"]
        with tempfile.TemporaryDirectory() as store_dir:
            ckpt = CheckpointPlan(CheckpointStore(store_dir))
            # First run populates the store; second run recovers all.
            UoILasso(LASSO_CFG).fit(lasso_data.X, lasso_data.y, checkpoint=ckpt)
            model = UoILasso(LASSO_CFG).fit(
                lasso_data.X, lasso_data.y, checkpoint=ckpt, telemetry=True
            )
            tel = model.telemetry_
            # TelemetryHook is registered after CheckpointHook, yet saw
            # every subproblem, all attributed as recovered.
            assert len(tel.subproblem_spans()) == total
            assert all(s.attrs["recovered"] for s in tel.subproblem_spans())
            summary = tel.summary()
            assert summary["recovered"] == total
            assert summary["solved"] == 0


class TestBackendRegistry:
    def test_backends_have_descriptions(self):
        assert set(BACKENDS) == {"serial", "multiprocess", "simmpi", "elastic"}
        for factory, desc in BACKENDS.values():
            assert isinstance(desc, str) and desc

    def test_backend_aliases(self):
        from repro.engine import BACKEND_ALIASES

        assert BACKEND_ALIASES == {"processpool-elastic": "elastic"}
        for alias, target in BACKEND_ALIASES.items():
            assert alias not in BACKENDS
            assert target in BACKENDS

    def test_make_executor_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            make_executor("mpi4py")

    def test_default_executor_env_var(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_BACKEND", raising=False)
        assert isinstance(default_executor(), SerialExecutor)
        monkeypatch.setenv("REPRO_ENGINE_BACKEND", "multiprocess")
        assert isinstance(default_executor(), MultiprocessExecutor)
        monkeypatch.setenv("REPRO_ENGINE_BACKEND", "Serial ")
        assert isinstance(default_executor(), SerialExecutor)

    def test_env_var_reaches_estimator(self, lasso_data, monkeypatch):
        ref = UoILasso(LASSO_CFG).fit(lasso_data.X, lasso_data.y)
        monkeypatch.setenv("REPRO_ENGINE_BACKEND", "multiprocess")
        got = UoILasso(LASSO_CFG).fit(lasso_data.X, lasso_data.y)
        assert got.coef_.tobytes() == ref.coef_.tobytes()


class _ExplodingPlan(LassoPlan):
    def run_chain(self, stage, tasks, recovered, emit):
        if stage == ESTIMATION:
            raise RuntimeError("boom")
        super().run_chain(stage, tasks, recovered, emit)


class TestFailureAttribution:
    def test_annotate_failure_notes(self):
        exc = RuntimeError("x")
        annotate_failure(exc, "serial", SELECTION)
        assert any("backend=serial" in n for n in exc.__notes__)

    @pytest.mark.parametrize(
        "executor",
        [SerialExecutor(), MultiprocessExecutor(max_workers=2)],
        ids=["serial", "multiprocess"],
    )
    def test_failure_names_backend_stage_and_tasks(self, lasso_data, executor):
        plan = _ExplodingPlan(LASSO_CFG, lasso_data.X, lasso_data.y)
        with pytest.raises(RuntimeError, match="boom") as excinfo:
            run_plan(plan, executor)
        notes = " ".join(getattr(excinfo.value, "__notes__", []))
        assert f"backend={executor.name}" in notes
        assert "stage=estimation" in notes
        assert "serial-est/k0" in notes

    def test_simmpi_spmd_error_carries_plan_position(self, lasso_data):
        from repro.simmpi.executor import SpmdError

        plan = _ExplodingPlan(LASSO_CFG, lasso_data.X, lasso_data.y)
        with pytest.raises(SpmdError) as excinfo:
            run_plan(plan, SimMpiExecutor(nranks=2))
        # Satellite contract: the aggregated message itself names the
        # backend and the subproblem that was in flight.
        msg = str(excinfo.value)
        assert "backend=simmpi" in msg
        assert "stage=estimation" in msg
        assert "serial-est/" in msg
