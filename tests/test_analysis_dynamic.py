"""Tests for the dynamic SPMD checkers (``repro.analysis.dynamic``).

The seeded regression fixtures required by the ``repro check`` gate:

* a rank-divergent allreduce (different reduce ops) -> ``DYN202``;
* a mismatched collective *sequence* (ranks post different operation
  kinds to one sequence point) -> ``DYN201``;
* an un-fenced put/get conflict -> ``DYN203``;
* a deadlock (one rank skips a barrier) -> ``DYN204``.

Each must be detected with the correct rule ID and attributed to the
call site in *this* file.  Finally, runs with a checker attached must
be bitwise identical to runs without one.
"""

import inspect

import numpy as np
import pytest

from repro.analysis import CollectiveMismatchError, DynamicChecker
from repro.simmpi import MIN, SUM, SpmdError, Window, run_spmd


def _line_of(fn, needle: str) -> int:
    """Absolute line number of the first source line containing needle."""
    lines, start = inspect.getsourcelines(fn)
    for offset, line in enumerate(lines):
        if needle in line:
            return start + offset
    raise AssertionError(f"{needle!r} not found in {fn.__name__}")


class TestCollectiveSequenceMismatch:
    def test_mismatched_collective_sequence_detected(self):
        """Seeded fixture: ranks post different kinds to one seq point."""

        def prog(comm):
            if comm.rank == 0:  # repro: ignore[SPMD001]
                comm.allreduce(1.0)
            else:
                comm.barrier()  # repro: ignore[SPMD001]

        checker = DynamicChecker()
        with pytest.raises(SpmdError, match="collective sequence mismatch"):
            run_spmd(2, prog, checker=checker)

        findings = checker.findings_for("DYN201")
        assert len(findings) == 1
        f = findings[0]
        assert f.severity == "error"
        assert f.source == "dynamic"
        assert f.file.endswith("test_analysis_dynamic.py")
        assert f.line == _line_of(prog, "comm.allreduce(1.0)")
        assert f.context["kinds"] == {0: "allreduce", 1: "barrier"}

    def test_mismatch_raises_at_the_collective(self):
        def prog(comm):
            if comm.rank == 0:  # repro: ignore[SPMD001]
                comm.bcast(1.0, root=0)
            else:
                comm.allgather(comm.rank)

        checker = DynamicChecker()
        with pytest.raises(SpmdError) as excinfo:
            run_spmd(2, prog, checker=checker)
        assert isinstance(excinfo.value.original, CollectiveMismatchError)

    def test_no_raise_mode_records_only(self):
        def prog(comm):
            if comm.rank == 0:  # repro: ignore[SPMD001]
                comm.barrier()
            else:
                comm.ibarrier().wait()

        checker = DynamicChecker(raise_on_mismatch=False)
        run_spmd(2, prog, checker=checker)
        assert [f.rule for f in checker.findings] == ["DYN201"]


class TestCollectiveArgumentMismatch:
    def test_rank_divergent_allreduce_op_detected(self):
        """Seeded fixture: same collective, rank-dependent reduce op."""

        def prog(comm):
            op = SUM if comm.rank == 0 else MIN
            return comm.allreduce(float(comm.rank + 1), op)

        checker = DynamicChecker()
        run_spmd(2, prog, checker=checker)

        findings = checker.findings_for("DYN202")
        assert len(findings) == 1
        f = findings[0]
        assert f.file.endswith("test_analysis_dynamic.py")
        assert f.line == _line_of(prog, "comm.allreduce(float")
        assert f.context["attribute"] == "op"

    def test_rank_divergent_payload_dtype_detected(self):
        def prog(comm):
            value = np.ones(2) if comm.rank == 0 else np.ones(2, dtype=np.int64)
            return comm.allreduce(value, SUM)

        checker = DynamicChecker()
        run_spmd(2, prog, checker=checker)

        findings = checker.findings_for("DYN202")
        assert len(findings) == 1
        assert findings[0].context["attribute"] == "payload"

    def test_rank_divergent_root_detected(self):
        def prog(comm):
            return comm.bcast(comm.rank, root=comm.rank % 2)

        checker = DynamicChecker(raise_on_mismatch=False)
        try:
            run_spmd(2, prog, checker=checker)
        except SpmdError:
            # The runtime may reject the inconsistent roots outright;
            # the checker must still have recorded the divergence.
            pass
        findings = checker.findings_for("DYN202")
        assert len(findings) >= 1
        assert any(f.context["attribute"] == "root" for f in findings)

    def test_matched_collectives_clean(self):
        def prog(comm):
            comm.allreduce(np.ones(3), SUM)
            comm.bcast(1.0 if comm.rank == 0 else None, root=0)
            comm.barrier()

        checker = DynamicChecker()
        run_spmd(4, prog, checker=checker)
        assert len(checker) == 0


class TestRmaEpochRace:
    def test_unfenced_put_get_conflict_detected(self):
        """Seeded fixture: put and overlapping get, no separating fence."""

        def prog(comm):
            win = Window(comm, np.zeros(8))
            win.fence()
            if comm.rank == 0:
                win.put(1, slice(0, 4), np.ones(4))
            else:
                win.get(1, slice(2, 6))
            # no closing fence: the job-end sweep must still analyze it

        checker = DynamicChecker()
        run_spmd(2, prog, checker=checker)

        findings = checker.findings_for("DYN203")
        assert len(findings) == 1
        f = findings[0]
        assert f.severity == "error"
        assert f.file.endswith("test_analysis_dynamic.py")
        assert f.line == _line_of(prog, "win.put(1, slice(0, 4)")
        assert f.context["ops"] == ["get", "put"]
        assert f.context["target"] == 1

    def test_fence_separated_put_get_clean(self):
        def prog(comm):
            win = Window(comm, np.zeros(8))
            win.fence()
            if comm.rank == 0:
                win.put(1, slice(0, 4), np.ones(4))
            win.fence()
            if comm.rank == 1:
                win.get(1, slice(2, 6))
            win.fence()

        checker = DynamicChecker()
        run_spmd(2, prog, checker=checker)
        assert len(checker) == 0

    def test_disjoint_rows_clean(self):
        def prog(comm):
            win = Window(comm, np.zeros(8))
            win.fence()
            if comm.rank == 0:
                win.put(1, slice(0, 4), np.ones(4))
            else:
                win.get(1, slice(4, 8))
            win.fence()

        checker = DynamicChecker()
        run_spmd(2, prog, checker=checker)
        assert len(checker) == 0

    def test_concurrent_accumulates_clean(self):
        # Same-op accumulates commute; MPI orders them atomically.
        def prog(comm):
            win = Window(comm, np.zeros(4))
            win.fence()
            win.accumulate(0, slice(None), np.ones(4))
            win.fence()

        checker = DynamicChecker()
        run_spmd(3, prog, checker=checker)
        assert len(checker) == 0

    def test_put_put_overlap_detected(self):
        def prog(comm):
            win = Window(comm, np.zeros(4))
            win.fence()
            if comm.rank > 0:
                win.put(0, 1, np.array(float(comm.rank)))
            win.fence()

        checker = DynamicChecker()
        run_spmd(3, prog, checker=checker)
        findings = checker.findings_for("DYN203")
        assert len(findings) == 1
        assert findings[0].context["origins"] == [1, 2]


class TestDeadlock:
    def test_deadlock_reported_with_blocked_ranks(self):
        """Seeded fixture: rank 0 waits in a barrier nobody else joins."""

        def prog(comm):
            if comm.rank == 0:  # repro: ignore[SPMD001]
                comm.barrier()

        checker = DynamicChecker()
        with pytest.raises(SpmdError, match="deadlock"):
            run_spmd(2, prog, checker=checker, deadlock_timeout_s=0.3)

        findings = checker.findings_for("DYN204")
        assert len(findings) == 1
        f = findings[0]
        assert "rank 0" in f.message
        assert "barrier" in f.message
        assert f.context["blocked"] == {"0": "barrier(seq=0)"}

    def test_recv_deadlock_reported(self):
        def prog(comm):
            if comm.rank == 0:  # repro: ignore[SPMD001]
                comm.recv(source=1, tag=7)

        checker = DynamicChecker()
        with pytest.raises(SpmdError, match="deadlock"):
            run_spmd(2, prog, checker=checker, deadlock_timeout_s=0.3)

        findings = checker.findings_for("DYN204")
        assert len(findings) == 1
        assert "recv" in findings[0].message

    def test_deadlock_raises_even_without_checker(self):
        def prog(comm):
            if comm.rank == 0:  # repro: ignore[SPMD001]
                comm.barrier()

        with pytest.raises(SpmdError, match="deadlock"):
            run_spmd(2, prog, deadlock_timeout_s=0.3)


class TestBitwiseIdentity:
    def test_lasso_fit_identical_with_and_without_checker(self):
        from repro.experiments._functional import mini_uoi_lasso_run

        plain = mini_uoi_lasso_run(nranks=3, n=48, p=6)
        checker = DynamicChecker()
        checked = mini_uoi_lasso_run(nranks=3, n=48, p=6, checker=checker)

        assert len(checker) == 0
        assert np.array_equal(plain["coef"], checked["coef"])
        assert np.array_equal(plain["supports"], checked["supports"])

    def test_var_fit_identical_with_and_without_checker(self):
        from repro.experiments._functional import mini_uoi_var_run

        plain = mini_uoi_var_run(nranks=3, p=3, n_samples=40)
        checker = DynamicChecker()
        checked = mini_uoi_var_run(nranks=3, p=3, n_samples=40, checker=checker)

        assert len(checker) == 0
        assert np.array_equal(plain["coef"], checked["coef"])
        assert np.array_equal(plain["supports"], checked["supports"])


class TestLeaseStall:
    def test_on_lease_stall_emits_dyn205(self):
        checker = DynamicChecker()
        checker.on_lease_stall(
            {"ew1": "chain 2 [est/k0] leased to ew1"},
            "no progress within 0.2s",
        )
        findings = checker.findings_for("DYN205")
        assert len(findings) == 1
        f = findings[0]
        assert "worker-lease stall" in f.message
        assert "ew1" in f.message
        assert f.context["stalled"] == {
            "ew1": "chain 2 [est/k0] leased to ew1"
        }

    def test_empty_fleet_stall_message(self):
        checker = DynamicChecker()
        checker.on_lease_stall({}, "no workers ever joined")
        (finding,) = checker.findings_for("DYN205")
        assert "no workers registered" in finding.message

    def test_rule_registered(self):
        from repro.analysis.rules import get_rule

        rule = get_rule("DYN205")
        assert rule.name == "worker-lease-stall"
        assert rule.severity == "error"
