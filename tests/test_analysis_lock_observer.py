"""DYN206: the runtime lock-order observer.

Covers the wrapper mechanics (plain/reentrant locks, the Condition
protocol), the two finding shapes (observed inversion, long-held
stall), the factory gating (plain primitives when no observer is
active), and the purity contract: a service demo run with the
observer attached is bitwise-identical to an unchecked one.
"""

import threading
import time

import pytest

from repro.analysis.dynamic import (
    DynamicChecker,
    LockOrderObserver,
    current_lock_observer,
    instrumented_condition,
    instrumented_lock,
    instrumented_rlock,
    use_lock_observer,
)


class TestFactoryGating:
    def test_plain_primitives_without_observer(self, monkeypatch):
        monkeypatch.delenv("REPRO_THREAD_CHECK", raising=False)
        assert current_lock_observer() is None
        assert type(instrumented_lock("x")) is type(threading.Lock())
        assert type(instrumented_rlock("x")) is type(threading.RLock())
        cond = instrumented_condition("x")
        assert isinstance(cond, threading.Condition)
        assert type(cond._lock) is type(threading.RLock())

    def test_env_gate_creates_global_observer(self, monkeypatch):
        import repro.analysis.dynamic as dyn

        monkeypatch.setenv("REPRO_THREAD_CHECK", "1")
        monkeypatch.setattr(dyn, "_ENV_OBSERVER", None)
        observer = current_lock_observer()
        assert isinstance(observer, LockOrderObserver)
        assert current_lock_observer() is observer  # cached singleton
        monkeypatch.setenv("REPRO_THREAD_CHECK", "0")
        monkeypatch.setattr(dyn, "_ENV_OBSERVER", None)
        assert current_lock_observer() is None

    def test_scoped_observer_wins_and_restores(self, monkeypatch):
        monkeypatch.delenv("REPRO_THREAD_CHECK", raising=False)
        observer = LockOrderObserver()
        with use_lock_observer(observer) as scoped:
            assert scoped is observer
            assert current_lock_observer() is observer
        assert current_lock_observer() is None

    def test_explicit_observer_argument(self):
        observer = LockOrderObserver()
        lock = instrumented_lock("x", observer=observer)
        with lock:
            pass
        assert observer.findings() == []


class TestInversionDetection:
    def test_observed_inversion_reports_once(self):
        observer = LockOrderObserver()
        a = instrumented_lock("A", observer=observer)
        b = instrumented_lock("B", observer=observer)
        for _ in range(3):
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        findings = observer.findings()
        assert len(findings) == 1
        assert findings[0].rule == "DYN206"
        assert set(findings[0].context["edge"]) == {"A", "B"}
        assert findings[0].file.endswith("test_analysis_lock_observer.py")

    def test_consistent_order_is_clean(self):
        observer = LockOrderObserver()
        a = instrumented_lock("A", observer=observer)
        b = instrumented_lock("B", observer=observer)
        for _ in range(5):
            with a:
                with b:
                    pass
        assert observer.findings() == []

    def test_cross_thread_inversion_detected(self):
        observer = LockOrderObserver()
        a = instrumented_lock("A", observer=observer)
        b = instrumented_lock("B", observer=observer)

        with a:
            with b:
                pass

        def other() -> None:
            with b:
                with a:
                    pass

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert len(observer.findings()) == 1

    def test_same_name_pairs_are_ambiguous_not_edges(self):
        # Two replicas of one class share a lock name; opposite orders
        # across distinct objects are not a provable inversion.
        observer = LockOrderObserver()
        r1 = instrumented_rlock("replica", observer=observer)
        r2 = instrumented_rlock("replica", observer=observer)
        with r1:
            with r2:
                pass
        with r2:
            with r1:
                pass
        assert observer.findings() == []

    def test_reentrant_acquisition_is_not_an_edge(self):
        observer = LockOrderObserver()
        r = instrumented_rlock("R", observer=observer)
        with r:
            with r:
                pass
        assert observer.findings() == []


class TestStallDetection:
    def test_long_hold_reports_once(self):
        observer = LockOrderObserver(stall_threshold=0.05)
        lock = instrumented_lock("S", observer=observer)
        for _ in range(2):
            with lock:
                time.sleep(0.08)
        findings = observer.findings()
        assert len(findings) == 1
        assert "long-held" in findings[0].message
        assert findings[0].context["lock"] == "S"

    def test_short_hold_is_clean(self):
        observer = LockOrderObserver(stall_threshold=0.5)
        lock = instrumented_lock("S", observer=observer)
        with lock:
            pass
        assert observer.findings() == []

    def test_stall_exempt_lock_never_reports(self):
        observer = LockOrderObserver(stall_threshold=0.05)
        lock = instrumented_lock("E", observer=observer, stall_exempt=True)
        with lock:
            time.sleep(0.08)
        assert observer.findings() == []

    def test_condition_wait_time_is_not_hold_time(self):
        """The Condition protocol releases the lock during wait(); a
        long wait must not read as a long hold."""
        observer = LockOrderObserver(stall_threshold=0.15)
        cond = instrumented_condition("C", observer=observer)
        ready: list[int] = []

        def producer() -> None:
            time.sleep(0.3)  # waiter blocks well past the threshold
            with cond:
                ready.append(1)
                cond.notify()

        t = threading.Thread(target=producer)
        t.start()
        with cond:
            while not ready:
                cond.wait()
        t.join()
        assert observer.findings() == []

    def test_plain_lock_condition_wait_is_clean(self):
        """The DoubleBuffer shape: Condition over an instrumented
        plain Lock routes wait through the wrapper's release/acquire."""
        observer = LockOrderObserver(stall_threshold=0.15)
        lock = instrumented_lock("L", observer=observer)
        cond = threading.Condition(lock)
        ready: list[int] = []

        def producer() -> None:
            time.sleep(0.3)
            with cond:
                ready.append(1)
                cond.notify()

        t = threading.Thread(target=producer)
        t.start()
        with cond:
            while not ready:
                cond.wait()
        t.join()
        assert observer.findings() == []


class TestCheckerIntegration:
    def test_observer_feeds_shared_checker(self):
        checker = DynamicChecker()
        observer = LockOrderObserver(checker)
        a = instrumented_lock("A", observer=observer)
        b = instrumented_lock("B", observer=observer)
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert len(checker.findings_for("DYN206")) == 1
        assert observer.checker is checker

    def test_exercise_lock_observer_is_clean(self):
        from repro.analysis.check import _exercise_lock_observer

        checker = _exercise_lock_observer()
        assert checker.findings == []


class TestInstrumentedProduction:
    def test_double_buffer_backpressure_under_observer(self):
        import numpy as np

        from repro.stream.ingest import DoubleBuffer

        observer = LockOrderObserver()
        with use_lock_observer(observer):
            buffer = DoubleBuffer(capacity=2)

            def producer() -> None:
                for i in range(16):
                    buffer.put(np.full(2, float(i)))
                buffer.close()

            rows: list[np.ndarray] = []

            def consumer() -> None:
                rows.extend(buffer.drain(poll_interval=0.001))

            threads = [
                threading.Thread(target=producer),
                threading.Thread(target=consumer),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(rows) == 16
        assert observer.findings() == []

    def test_scheduler_job_lifecycle_under_observer(self):
        import numpy as np

        from repro.core.config import UoILassoConfig
        from repro.service.jobs import JobSpec
        from repro.service.service import Service

        observer = LockOrderObserver()
        with use_lock_observer(observer):
            rng = np.random.default_rng(3)
            X = rng.standard_normal((30, 4))
            y = X @ rng.standard_normal(4)
            config = UoILassoConfig(
                n_lambdas=3,
                n_selection_bootstraps=2,
                n_estimation_bootstraps=2,
                random_state=5,
            )
            with Service(workers=2, batching=True, max_batch=2) as service:
                ids = [
                    service.submit(
                        JobSpec(
                            tenant="t",
                            kind="lasso",
                            data={"X": X, "y": y},
                            config=config,
                        )
                    )
                    for _ in range(3)
                ]
                for job_id in ids:
                    service.results(job_id, timeout=60.0)
        assert observer.findings() == []


@pytest.mark.slow
class TestDemoBitwiseIdentity:
    def test_checked_demo_is_bitwise_identical(self, tmp_path):
        """The acceptance contract: a DYN206-observed service demo run
        reproduces direct fits bitwise, exactly like an unchecked one,
        and the observer sees a clean lock discipline."""
        from repro.service.server import run_demo

        unchecked = run_demo(
            2, workers=2, store_root=str(tmp_path / "plain")
        )
        assert unchecked["identical"] is True

        observer = LockOrderObserver()
        with use_lock_observer(observer):
            checked = run_demo(
                2, workers=2, store_root=str(tmp_path / "checked")
            )
        assert checked["identical"] is True
        assert observer.findings() == []
        assert [j["state"] for j in checked["per_job"]] == [
            j["state"] for j in unchecked["per_job"]
        ]
