"""Tests for the serial UoIVar estimator (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import UoIVar, UoIVarConfig, UoILassoConfig
from repro.datasets import make_sparse_var
from repro.metrics import selection_report
from repro.var import VARProcess

FAST = dict(
    n_lambdas=8,
    n_selection_bootstraps=8,
    n_estimation_bootstraps=4,
    solver="cd",
    random_state=0,
)


@pytest.fixture(scope="module")
def fitted_var1():
    rng = np.random.default_rng(10)
    p = 5
    A = np.zeros((p, p))
    np.fill_diagonal(A, 0.5)
    A[0, 3] = 0.4
    A[2, 4] = -0.35
    proc = VARProcess([A])
    series = proc.simulate(800, rng)
    model = UoIVar(order=1, **FAST).fit(series)
    return A, model


class TestFitVar1:
    def test_recovers_network(self, fitted_var1):
        A, model = fitted_var1
        rep = selection_report(A != 0, model.coefs_[0])
        assert rep.recall >= 0.8
        assert rep.fp <= 4

    def test_coefficients_close(self, fitted_var1):
        A, model = fitted_var1
        on = A != 0
        assert np.max(np.abs(model.coefs_[0][on] - A[on])) < 0.2

    def test_attributes(self, fitted_var1):
        _, model = fitted_var1
        assert len(model.coefs_) == 1
        assert model.coefs_[0].shape == (5, 5)
        assert model.intercept_.shape == (5,)
        assert model.vec_coef_.shape == (25,)
        assert model.supports_.shape == (8, 25)
        assert model.losses_.shape == (4, 8)

    def test_network_summary_and_graph(self, fitted_var1):
        _, model = fitted_var1
        s = model.network_summary()
        assert s["nodes"] == 5
        g = model.granger_graph(labels=list("abcde"))
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == s["edges"]

    def test_predict_next(self, fitted_var1):
        A, model = fitted_var1
        hist = np.ones((3, 5))
        pred = model.predict_next(hist)
        expected = model.intercept_ + model.coefs_[0] @ hist[-1]
        np.testing.assert_allclose(pred, expected)

    def test_deterministic(self):
        sv = make_sparse_var(4, 200, rng=np.random.default_rng(3))
        a = UoIVar(order=1, **FAST).fit(sv.series)
        b = UoIVar(order=1, **FAST).fit(sv.series)
        np.testing.assert_array_equal(a.vec_coef_, b.vec_coef_)


class TestVar2:
    def test_order_two_recovery(self):
        rng = np.random.default_rng(20)
        p = 4
        A1 = np.diag([0.4, 0.4, 0.4, 0.4]).astype(float)
        A1[1, 3] = 0.35
        A2 = np.zeros((p, p))
        A2[0, 2] = -0.3
        series = VARProcess([A1, A2]).simulate(1200, rng)
        model = UoIVar(order=2, **FAST).fit(series)
        assert len(model.coefs_) == 2
        # The strong lag-2 edge is found.
        assert model.coefs_[1][0, 2] != 0
        assert abs(model.coefs_[1][0, 2] - (-0.3)) < 0.15

    def test_intercept_estimation(self):
        rng = np.random.default_rng(21)
        p = 3
        A = np.eye(p) * 0.4
        mu = np.array([1.0, -2.0, 0.5])
        series = VARProcess([A], intercept=mu).simulate(1500, rng)
        model = UoIVar(order=1, fit_intercept=True, **FAST).fit(series)
        np.testing.assert_allclose(model.intercept_, mu, atol=0.35)


class TestConfig:
    def test_inner_overrides_forwarded(self):
        m = UoIVar(order=2, n_lambdas=5, random_state=7)
        assert m.config.order == 2
        assert m.config.lasso.n_lambdas == 5
        assert m.config.lasso.random_state == 7

    def test_explicit_config(self):
        cfg = UoIVarConfig(order=3, lasso=UoILassoConfig(n_lambdas=6))
        m = UoIVar(cfg)
        assert m.config.order == 3
        assert m.config.lasso.n_lambdas == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            UoIVarConfig(order=0)
        with pytest.raises(ValueError):
            UoIVarConfig(block_length=0)

    def test_methods_require_fit(self):
        m = UoIVar()
        with pytest.raises(RuntimeError, match="fit"):
            m.predict_next(np.ones((2, 2)))
        with pytest.raises(RuntimeError, match="fit"):
            m.granger_graph()
        with pytest.raises(RuntimeError, match="fit"):
            m.network_summary()

    def test_predict_next_needs_enough_history(self):
        sv = make_sparse_var(3, 100, rng=np.random.default_rng(4))
        m = UoIVar(order=2, **{**FAST, "n_selection_bootstraps": 2,
                               "n_estimation_bootstraps": 2, "n_lambdas": 3}).fit(sv.series)
        with pytest.raises(ValueError, match="rows"):
            m.predict_next(np.ones((1, 3)))


class TestFittedModelUtilities:
    def test_forecast_and_diagnose(self, fitted_var1):
        A, model = fitted_var1
        hist = np.ones((2, 5))
        f = model.forecast(hist, 3)
        assert f.shape == (3, 5)
        np.testing.assert_allclose(
            f[0], model.intercept_ + model.coefs_[0] @ hist[-1]
        )
        fi = model.forecast_intervals(
            hist, 2, n_paths=50, rng=np.random.default_rng(0)
        )
        assert np.all(fi.lower <= fi.upper)

    def test_diagnose_fitted_model(self):
        rng = np.random.default_rng(30)
        A = np.eye(4) * 0.5
        from repro.var import VARProcess

        series = VARProcess([A]).simulate(600, rng)
        model = UoIVar(order=1, **FAST).fit(series)
        d = model.diagnose(series)
        assert d.stable
        assert d.spectral_radius < 1.0

    def test_methods_require_fit(self):
        m = UoIVar()
        with pytest.raises(RuntimeError, match="fit"):
            m.forecast(np.ones((2, 2)), 1)
        with pytest.raises(RuntimeError, match="fit"):
            m.diagnose(np.ones((10, 2)))
