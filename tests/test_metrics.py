"""Tests for selection and estimation metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics import (
    coefficient_bias,
    estimation_report,
    false_negative_rate,
    false_positive_rate,
    mean_squared_error,
    r_squared,
    selection_report,
)

masks = hnp.arrays(np.bool_, st.integers(1, 40))


class TestSelectionReport:
    def test_confusion_counts(self):
        true = np.array([True, True, False, False])
        est = np.array([True, False, True, False])
        r = selection_report(true, est)
        assert (r.tp, r.fn, r.fp, r.tn) == (1, 1, 1, 1)
        assert r.precision == 0.5
        assert r.recall == 0.5
        assert not r.exact

    def test_exact_recovery(self):
        m = np.array([True, False, True])
        r = selection_report(m, m)
        assert r.exact and r.precision == 1.0 and r.recall == 1.0 and r.f1 == 1.0

    def test_coefficients_accepted(self):
        true = np.array([1.5, 0.0, -2.0])
        est = np.array([0.1, 0.0, -1.0])
        r = selection_report(true, est)
        assert r.exact

    def test_empty_estimate_conventions(self):
        true = np.array([True, False])
        est = np.array([False, False])
        r = selection_report(true, est)
        assert r.precision == 1.0  # no selections -> no false claims
        assert r.recall == 0.0

    @given(m=masks)
    def test_counts_partition_features(self, m):
        rng = np.random.default_rng(0)
        est = rng.random(m.shape) < 0.5
        r = selection_report(m, est)
        assert r.tp + r.fp + r.tn + r.fn == m.size

    @given(m=masks)
    def test_rates_complementary(self, m):
        rng = np.random.default_rng(1)
        est = rng.random(m.shape) < 0.5
        fpr = false_positive_rate(m, est)
        fnr = false_negative_rate(m, est)
        assert 0.0 <= fpr <= 1.0
        assert 0.0 <= fnr <= 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            selection_report(np.ones(3, dtype=bool), np.ones(4, dtype=bool))


class TestEstimationMetrics:
    def test_mse(self):
        assert mean_squared_error(np.array([1.0, 2.0]), np.array([1.0, 4.0])) == 2.0

    def test_bias_measures_shrinkage(self):
        true = np.array([2.0, -3.0, 0.0])
        shrunk = np.array([1.5, -2.5, 0.0])
        assert coefficient_bias(true, shrunk) == pytest.approx(0.5)
        assert coefficient_bias(true, true) == 0.0

    def test_bias_ignores_true_zeros(self):
        true = np.array([0.0, 0.0])
        est = np.array([5.0, -5.0])
        assert coefficient_bias(true, est) == 0.0

    def test_r_squared(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert r_squared(y, y) == 1.0
        assert r_squared(y, np.full(4, y.mean())) == 0.0
        assert r_squared(np.ones(3), np.zeros(3)) == 0.0  # constant truth

    def test_report_bundle(self):
        true = np.array([1.0, 0.0, -2.0])
        est = np.array([0.8, 0.1, -2.1])
        rep = estimation_report(true, est)
        assert rep.max_abs_error == pytest.approx(0.2)
        assert rep.mse == pytest.approx((0.04 + 0.01 + 0.01) / 3)

    @given(
        arr=hnp.arrays(
            np.float64,
            st.integers(1, 30),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    def test_perfect_estimate_is_zero_everywhere(self, arr):
        rep = estimation_report(arr, arr.copy())
        assert rep.mse == 0.0
        assert rep.bias == 0.0
        assert rep.max_abs_error == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_squared_error(np.ones(2), np.ones(3))
        with pytest.raises(ValueError):
            r_squared(np.ones(2), np.ones(3))
