"""Tests for distributed consensus LASSO-ADMM."""

import numpy as np
import pytest
import scipy.sparse

from repro.linalg import LassoADMM, lasso_cd
from repro.linalg.consensus import consensus_lasso_admm
from repro.simmpi import CORI_KNL, LAPTOP, run_spmd, SpmdError, TimeCategory


@pytest.fixture
def problem():
    rng = np.random.default_rng(0)
    n, p = 120, 10
    X = rng.standard_normal((n, p))
    beta = np.zeros(p)
    beta[[1, 4, 7]] = [2.0, -3.0, 1.5]
    y = X @ beta + 0.1 * rng.standard_normal(n)
    return X, y


def _run_consensus(X, y, lam, nranks=4, **kwargs):
    n = X.shape[0]

    def prog(comm):
        idx = np.array_split(np.arange(n), comm.size)[comm.rank]
        return comm.clock, consensus_lasso_admm(comm, X[idx], y[idx], lam, **kwargs)

    res = run_spmd(nranks, prog, machine=CORI_KNL)
    return res


class TestConsensusLasso:
    def test_matches_serial_solution(self, problem):
        X, y = problem
        lam = 5.0
        serial = LassoADMM(X, y, max_iter=2000).solve(lam).beta
        res = _run_consensus(X, y, lam, max_iter=2000)
        np.testing.assert_allclose(res.values[0][1].beta, serial, atol=5e-4)

    def test_all_ranks_agree_exactly(self, problem):
        X, y = problem
        res = _run_consensus(X, y, 5.0)
        betas = [v[1].beta for v in res.values]
        for b in betas[1:]:
            np.testing.assert_array_equal(b, betas[0])

    def test_lam_zero_gives_ols(self, problem):
        X, y = problem
        ols = np.linalg.lstsq(X, y, rcond=None)[0]
        res = _run_consensus(X, y, 0.0, max_iter=2000)
        np.testing.assert_allclose(res.values[0][1].beta, ols, atol=1e-3)

    def test_unequal_block_sizes(self, problem):
        X, y = problem
        res = _run_consensus(X, y, 5.0, nranks=7)  # 120 not divisible by 7
        cd = lasso_cd(X, y, 5.0)
        np.testing.assert_allclose(res.values[0][1].beta, cd, atol=2e-3)

    def test_single_rank_degenerates_to_serial(self, problem):
        X, y = problem
        res = _run_consensus(X, y, 5.0, nranks=1, max_iter=2000)
        cd = lasso_cd(X, y, 5.0)
        np.testing.assert_allclose(res.values[0][1].beta, cd, atol=1e-3)

    def test_warm_start(self, problem):
        X, y = problem
        cold = _run_consensus(X, y, 5.0)
        beta0 = cold.values[0][1].beta
        warm = _run_consensus(X, y, 5.0, beta0=beta0)
        assert warm.values[0][1].iterations <= cold.values[0][1].iterations

    def test_charges_compute_and_communication(self, problem):
        X, y = problem
        res = _run_consensus(X, y, 5.0)
        for clock, _ in res.values:
            assert clock.breakdown[TimeCategory.COMPUTE] > 0
            assert clock.breakdown[TimeCategory.COMMUNICATION] > 0

    def test_sparse_input_matches_dense(self, problem):
        X, y = problem
        lam = 5.0
        n = X.shape[0]

        def prog(comm):
            idx = np.array_split(np.arange(n), comm.size)[comm.rank]
            sp = scipy.sparse.csr_matrix(X[idx])
            return consensus_lasso_admm(comm, sp, y[idx], lam)

        res = run_spmd(4, prog, machine=CORI_KNL)
        dense = _run_consensus(X, y, lam)
        np.testing.assert_allclose(
            res.values[0].beta, dense.values[0][1].beta, atol=1e-6
        )

    def test_block_diagonal_sparse_problem(self):
        """The UoI_VAR shape: sparse block-diagonal lifted design."""
        rng = np.random.default_rng(1)
        from repro.linalg.kron import identity_kron, vec

        m, k, p = 20, 3, 3
        Xb = rng.standard_normal((m, k))
        B = rng.standard_normal((k, p)) * (rng.random((k, p)) < 0.5)
        Y = Xb @ B + 0.05 * rng.standard_normal((m, p))
        lifted = identity_kron(Xb, p, sparse=True)
        b = vec(Y)
        lam = 3.0
        n = lifted.shape[0]

        def prog(comm):
            idx = np.array_split(np.arange(n), comm.size)[comm.rank]
            return consensus_lasso_admm(comm, lifted[idx], b[idx], lam)

        res = run_spmd(3, prog, machine=CORI_KNL)
        serial = lasso_cd(lifted.toarray(), b, lam)
        np.testing.assert_allclose(res.values[0].beta, serial, atol=2e-3)

    def test_validation_errors(self, problem):
        X, y = problem

        def bad_lam(comm):
            consensus_lasso_admm(comm, X, y, -1.0)

        with pytest.raises(SpmdError, match="lam"):
            run_spmd(2, bad_lam, machine=LAPTOP)

        def bad_shapes(comm):
            consensus_lasso_admm(comm, X, y[:-1], 1.0)

        with pytest.raises(SpmdError, match="incompatible"):
            run_spmd(2, bad_shapes, machine=LAPTOP)

        def bad_rho(comm):
            consensus_lasso_admm(comm, X, y, 1.0, rho=-1.0)

        with pytest.raises(SpmdError, match="rho"):
            run_spmd(2, bad_rho, machine=LAPTOP)


class TestAdaptiveRhoConsensus:
    def test_adaptive_matches_fixed_with_fewer_iterations(self, problem):
        X, y = problem
        fixed = _run_consensus(X, y, 5.0, max_iter=2000)
        adaptive = _run_consensus(X, y, 5.0, max_iter=2000, adapt_rho=True)
        f, a = fixed.values[0][1], adaptive.values[0][1]
        assert a.iterations < f.iterations
        np.testing.assert_allclose(a.beta, f.beta, atol=1e-3)

    def test_adaptive_all_ranks_identical(self, problem):
        X, y = problem
        res = _run_consensus(X, y, 5.0, adapt_rho=True)
        ref = res.values[0][1].beta
        for _, r in res.values[1:]:
            np.testing.assert_array_equal(r.beta, ref)

    def test_adaptive_sparse_path(self):
        rng = np.random.default_rng(2)
        import scipy.sparse as sp
        X = rng.standard_normal((60, 8))
        y = rng.standard_normal(60)

        def prog(comm):
            idx = np.array_split(np.arange(60), comm.size)[comm.rank]
            return consensus_lasso_admm(
                comm, sp.csr_matrix(X[idx]), y[idx], 2.0, adapt_rho=True
            )

        res = run_spmd(3, prog, machine=CORI_KNL)
        serial = lasso_cd(X, y, 2.0)
        np.testing.assert_allclose(res.values[0].beta, serial, atol=2e-3)

    def test_adapt_validation(self, problem):
        X, y = problem

        def prog(comm):
            consensus_lasso_admm(comm, X, y, 1.0, adapt_tau=1.0)

        with pytest.raises(SpmdError, match="adapt"):
            run_spmd(2, prog, machine=LAPTOP)
