"""Tests for iid and block bootstrap resampling."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.bootstrap import (
    block_train_eval,
    bootstrap_train_eval,
    circular_block_bootstrap,
    default_block_length,
    iid_bootstrap,
)


class TestIidBootstrap:
    @given(n=st.integers(1, 200), seed=st.integers(0, 1000))
    def test_indices_in_range_and_full_size(self, n, seed):
        idx = iid_bootstrap(n, np.random.default_rng(seed))
        assert idx.shape == (n,)
        assert idx.min() >= 0 and idx.max() < n

    def test_custom_size(self):
        idx = iid_bootstrap(10, np.random.default_rng(0), size=25)
        assert idx.shape == (25,)

    def test_deterministic_given_seed(self):
        a = iid_bootstrap(50, np.random.default_rng(7))
        b = iid_bootstrap(50, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_resamples_with_replacement(self):
        idx = iid_bootstrap(100, np.random.default_rng(1))
        assert len(np.unique(idx)) < 100  # almost surely

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            iid_bootstrap(0, rng)
        with pytest.raises(ValueError):
            iid_bootstrap(5, rng, size=0)


class TestBootstrapTrainEval:
    @given(n=st.integers(2, 300), seed=st.integers(0, 500))
    def test_eval_disjoint_from_training_pool(self, n, seed):
        train, ev = bootstrap_train_eval(n, np.random.default_rng(seed))
        assert set(train).isdisjoint(set(ev))
        assert len(ev) >= 1
        assert len(train) >= 1

    @given(n=st.integers(10, 300), seed=st.integers(0, 500))
    def test_split_sizes(self, n, seed):
        train, ev = bootstrap_train_eval(
            n, np.random.default_rng(seed), train_frac=0.8
        )
        n_train = len(train)
        assert n_train + len(ev) == n  # train bootstrapped to pool size
        assert abs(n_train - 0.8 * n) <= 1

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            bootstrap_train_eval(1, rng)
        with pytest.raises(ValueError):
            bootstrap_train_eval(10, rng, train_frac=1.0)


class TestBlockBootstrap:
    def test_default_block_length(self):
        assert default_block_length(1) == 1
        assert default_block_length(27) == 3
        assert default_block_length(1000) == 10

    @given(
        n=st.integers(1, 200),
        L=st.integers(1, 20),
        seed=st.integers(0, 500),
    )
    def test_indices_valid(self, n, L, seed):
        idx = circular_block_bootstrap(
            n, np.random.default_rng(seed), block_length=L
        )
        assert idx.shape == (n,)
        assert idx.min() >= 0 and idx.max() < n

    @given(n=st.integers(5, 200), seed=st.integers(0, 500))
    def test_blocks_are_contiguous_mod_n(self, n, seed):
        """Within every block, consecutive indices step by 1 (mod n)."""
        L = min(5, n)
        idx = circular_block_bootstrap(
            n, np.random.default_rng(seed), block_length=L
        )
        for start in range(0, len(idx) - L + 1, L):
            block = idx[start : start + L]
            steps = np.diff(block) % n
            assert np.all(steps == 1)

    def test_block_length_capped_at_n(self):
        idx = circular_block_bootstrap(
            3, np.random.default_rng(0), block_length=100
        )
        assert idx.shape == (3,)

    def test_custom_size_truncates_tail_block(self):
        idx = circular_block_bootstrap(
            20, np.random.default_rng(0), block_length=7, size=10
        )
        assert idx.shape == (10,)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            circular_block_bootstrap(0, rng)
        with pytest.raises(ValueError):
            circular_block_bootstrap(5, rng, block_length=0)
        with pytest.raises(ValueError):
            circular_block_bootstrap(5, rng, size=0)


class TestBlockTrainEval:
    @given(n=st.integers(4, 300), seed=st.integers(0, 500))
    def test_eval_disjoint_and_contiguous_on_ring(self, n, seed):
        train, ev = block_train_eval(n, np.random.default_rng(seed))
        assert set(train).isdisjoint(set(ev))
        # Eval indices form one contiguous arc on the circular index ring:
        # the complement of a contiguous arc is contiguous, so among the
        # sorted gaps there is at most one jump > 1.
        gaps = np.diff(np.sort(ev))
        assert np.sum(gaps > 1) <= 1

    @given(n=st.integers(10, 300), seed=st.integers(0, 500))
    def test_train_indices_only_from_pool(self, n, seed):
        rng = np.random.default_rng(seed)
        train, ev = block_train_eval(n, rng)
        assert set(train).isdisjoint(set(ev))
        assert max(len(train), len(ev)) < n

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            block_train_eval(3, rng)
        with pytest.raises(ValueError):
            block_train_eval(20, rng, train_frac=0.0)
