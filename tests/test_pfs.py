"""Tests for the simulated Lustre filesystem and HDF5-like layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pfs import (
    Hyperslab,
    SimH5File,
    effective_stripes,
    parallel_read_time,
    randomized_shuffle_time,
    serial_chunked_read_time,
)
from repro.pfs.lustre import conventional_distribution_time
from repro.simmpi import CORI_KNL, LAPTOP, RankClock, TimeCategory, run_spmd


class TestHyperslab:
    def test_slices(self):
        slab = Hyperslab((2, 0), (3, 4))
        assert slab.slices() == (slice(2, 5), slice(0, 4))
        assert slab.nelems() == 12

    def test_rows_helper(self):
        slab = Hyperslab.rows(5, 10, 3)
        assert slab.start == (5, 0)
        assert slab.count == (10, 3)

    def test_validation(self):
        with pytest.raises(ValueError, match="rank mismatch"):
            Hyperslab((0,), (1, 2))
        with pytest.raises(ValueError, match="negative"):
            Hyperslab((-1, 0), (2, 2))

    @given(
        start=st.integers(0, 20),
        count=st.integers(0, 20),
        ncols=st.integers(1, 8),
    )
    def test_select_matches_numpy_slicing(self, start, count, ncols):
        data = np.arange(40 * ncols, dtype=float).reshape(40, ncols)
        file = SimH5File("/t.h5")
        ds = file.create_dataset("d", data)
        if start + count > 40:
            with pytest.raises(ValueError, match="overflows"):
                ds.select(Hyperslab.rows(start, count, ncols))
        else:
            out = ds.select(Hyperslab.rows(start, count, ncols))
            np.testing.assert_array_equal(out, data[start : start + count])


class TestSimH5File:
    def test_duplicate_dataset_rejected(self):
        f = SimH5File("/a.h5")
        f.create_dataset("x", np.ones((2, 2)))
        with pytest.raises(ValueError, match="already exists"):
            f.create_dataset("x", np.zeros((2, 2)))

    def test_missing_dataset(self):
        with pytest.raises(KeyError, match="no dataset"):
            SimH5File("/a.h5").dataset("nope")

    def test_contains_and_nbytes(self):
        f = SimH5File("/a.h5")
        f.create_dataset("x", np.ones((4, 2)))
        assert "x" in f and "y" not in f
        assert f.nbytes == 64

    def test_serial_read_counts_reopens_and_charges(self):
        f = SimH5File("/a.h5")
        f.create_dataset("x", np.arange(20.0).reshape(10, 2))
        clock = RankClock()
        out = f.read_serial("x", Hyperslab.rows(2, 3, 2), clock=clock, machine=LAPTOP)
        np.testing.assert_array_equal(out, np.arange(20.0).reshape(10, 2)[2:5])
        assert f.open_count == 1
        assert clock.breakdown[TimeCategory.DATA_IO] > 0
        f.read_serial("x", Hyperslab.rows(0, 1, 2), clock=clock, machine=LAPTOP)
        assert f.open_count == 2

    def test_serial_read_requires_machine_with_clock(self):
        f = SimH5File("/a.h5")
        f.create_dataset("x", np.ones((2, 2)))
        with pytest.raises(ValueError, match="machine"):
            f.read_serial("x", Hyperslab.rows(0, 1, 2), clock=RankClock())

    def test_parallel_read_collective(self):
        data = np.arange(24.0).reshape(8, 3)
        f = SimH5File("/p.h5")
        f.create_dataset("x", data)

        def prog(comm):
            rows = 8 // comm.size
            slab = Hyperslab.rows(comm.rank * rows, rows, 3)
            out = f.read_parallel(comm, "x", slab)
            return out, comm.clock.breakdown[TimeCategory.DATA_IO]

        res = run_spmd(4, prog, machine=LAPTOP)
        got = np.concatenate([v[0] for v in res.values])
        np.testing.assert_array_equal(got, data)
        assert all(v[1] > 0 for v in res.values)

    def test_write_parallel_roundtrip(self):
        f = SimH5File("/w.h5")
        f.create_dataset("src", np.zeros((2, 2)))

        def prog(comm):
            block = np.full((2, 3), float(comm.rank))
            f.write_parallel(comm, "out", block)
            return True

        run_spmd(3, prog, machine=LAPTOP)
        out = f.dataset("out").data
        assert out.shape == (6, 3)
        np.testing.assert_array_equal(out[4], [2.0, 2.0, 2.0])


class TestLustreCostModel:
    def test_striping_policy(self):
        assert effective_stripes(CORI_KNL, 16 * 1024**3) == 1
        assert effective_stripes(CORI_KNL, 128 * 1024**3) == CORI_KNL.ost_count

    def test_small_files_unstriped_read_slower_than_big_striped(self):
        """The paper's 16 GB oddity: unstriped 16 GB reads slower than 128 GB."""
        t16 = parallel_read_time(CORI_KNL, 16 * 1024**3, 68)
        t128 = parallel_read_time(CORI_KNL, 128 * 1024**3, 4352)
        assert t16 > t128

    def test_table2_calibration_within_factor_two(self):
        """Modeled Table II columns land within 2x of the paper's rows."""
        paper = {
            16: (204.71, 11.3191),
            128: (1200.81, 0.52),
            256: (2204.52, 1.46),
            512: (5323.486, 8.043),
            1024: (11732.48, 8.781),
        }
        cores = {16: 68, 128: 4352, 256: 8704, 512: 17408, 1024: 34816}
        for gb, (conv_read, rand_read) in paper.items():
            nbytes = gb * 1024**3
            m_conv = serial_chunked_read_time(CORI_KNL, nbytes)
            m_rand = parallel_read_time(CORI_KNL, nbytes, cores[gb])
            assert conv_read / 2 <= m_conv <= conv_read * 2, f"conv {gb}GB"
            assert rand_read / 2.6 <= m_rand <= rand_read * 2.6, f"rand {gb}GB"

    def test_conventional_read_beyond_1tb_exceeds_5_hours(self):
        assert serial_chunked_read_time(CORI_KNL, 2048 * 1024**3) > 5 * 3600

    def test_randomized_read_beyond_1tb_under_100_seconds(self):
        assert parallel_read_time(CORI_KNL, 2048 * 1024**3, 69632) < 100

    @given(gb=st.floats(1, 8192), cores=st.integers(1, 300_000))
    @settings(max_examples=40, deadline=None)
    def test_randomized_always_beats_conventional_at_scale(self, gb, cores):
        nbytes = int(gb * 1024**3)
        conv = serial_chunked_read_time(CORI_KNL, nbytes) + conventional_distribution_time(
            CORI_KNL, nbytes, cores
        )
        rand = parallel_read_time(CORI_KNL, nbytes, cores) + randomized_shuffle_time(
            CORI_KNL, nbytes, cores
        )
        assert rand < conv

    def test_shuffle_flat_along_weak_scaling_diagonal(self):
        """Constant bytes-per-core -> near-constant Tier-2 shuffle time
        (Table II's flat randomized-distribution column)."""
        times = [
            randomized_shuffle_time(CORI_KNL, gb * 1024**3, int(4352 * gb / 128))
            for gb in (128, 256, 512, 1024)
        ]
        assert max(times) / min(times) < 1.2

    def test_intranode_shuffle_uses_memory_bandwidth(self):
        on_node = randomized_shuffle_time(CORI_KNL, 10**9, 68)
        off_node = randomized_shuffle_time(CORI_KNL, 10**9, 69)
        assert on_node < off_node

    def test_validation(self):
        with pytest.raises(ValueError):
            parallel_read_time(CORI_KNL, -1, 4)
        with pytest.raises(ValueError):
            parallel_read_time(CORI_KNL, 10, 0)
        with pytest.raises(ValueError):
            serial_chunked_read_time(CORI_KNL, -5)
        with pytest.raises(ValueError):
            randomized_shuffle_time(CORI_KNL, 10, 0)
        assert serial_chunked_read_time(CORI_KNL, 0) == 0.0
        assert conventional_distribution_time(CORI_KNL, 10**9, 1) == 0.0
