"""Tests for the line-JSON socket transport and the demo driver."""

import json
import socket

import numpy as np
import pytest

from repro.service import (
    AdmissionError,
    Service,
    ServiceServer,
    SocketServiceClient,
    UnknownJobError,
)
from repro.service.server import decode_array, encode_array, run_demo
from tests.test_service import LASSO_CFG


@pytest.fixture()
def lasso_problem():
    rng = np.random.default_rng(5)
    X = rng.normal(size=(40, 6))
    beta = np.zeros(6)
    beta[:2] = (1.2, -0.8)
    y = X @ beta + 0.1 * rng.normal(size=40)
    return {"X": X, "y": y}


@pytest.fixture()
def served():
    with Service(workers=2) as service, ServiceServer(service) as server:
        yield service, SocketServiceClient(*server.address)


class TestWireEncoding:
    def test_array_roundtrip_is_bitwise(self):
        for arr in (
            np.random.default_rng(0).normal(size=(3, 5)),
            np.arange(7, dtype=np.int64),
            np.array([], dtype=np.float32),
            np.array(True),
        ):
            out = decode_array(json.loads(json.dumps(encode_array(arr))))
            assert out.dtype == arr.dtype
            assert out.shape == arr.shape
            assert np.array_equal(out, arr)

    def test_decoded_array_is_writable(self):
        out = decode_array(encode_array(np.arange(4.0)))
        out[0] = 9.0  # frombuffer alone would be read-only


class TestSocketRoundTrip:
    def test_submit_results_status_over_the_wire(self, served, lasso_problem):
        _, client = served
        assert client.ping()
        job_id = client.submit("lasso", lasso_problem, config=LASSO_CFG)
        outputs = client.results(job_id, timeout=120.0)
        from repro.core.uoi_lasso import UoILasso

        ref = UoILasso(LASSO_CFG).fit(lasso_problem["X"], lasso_problem["y"])
        assert np.array_equal(outputs["coef"], ref.coef_)
        assert np.array_equal(outputs["lambdas"], ref.lambdas_)
        status = client.status(job_id)
        assert status["state"] == "done"
        assert [j["id"] for j in client.jobs()] == [job_id]

    def test_stream_progress_over_the_wire(self, served, lasso_problem):
        _, client = served
        job_id = client.submit("lasso", lasso_problem, config=LASSO_CFG)
        events = list(client.stream_progress(job_id))
        assert events[-1]["final"] is True
        assert events[-1]["state"] == "done"
        assert len(events) == 9  # 4 + 4 subproblems, then the terminal event

    def test_errors_map_back_to_typed_exceptions(self, served, lasso_problem):
        _, client = served
        with pytest.raises(AdmissionError):
            client.submit("ridge", lasso_problem)
        with pytest.raises(UnknownJobError):
            client.status("j999")
        with pytest.raises(TimeoutError):
            client.submit("lasso", lasso_problem, config=LASSO_CFG)
            # tiny deadline: the previous submit keeps the worker busy
            client.results(client.jobs()[-1]["id"], timeout=1e-9)

    def test_unknown_op_rejected(self, served):
        service, client = served
        with pytest.raises(RuntimeError, match="unknown op"):
            client._call({"op": "explode"})

    def test_malformed_request_reports_error(self, served):
        _, client = served
        with socket.create_connection((client.host, client.port)) as conn:
            conn.sendall(b"this is not json\n")
            line = conn.makefile("r").readline()
        response = json.loads(line)
        assert response["ok"] is False
        assert response["error"] == "JSONDecodeError"

    def test_cancel_over_the_wire(self, served, lasso_problem):
        _, client = served
        ids = [
            client.submit(
                "lasso", lasso_problem, config=LASSO_CFG, tenant=f"t{i}"
            )
            for i in range(6)
        ]
        cancelled = client.cancel(ids[-1])
        # Either it was still queued/running (True) or already finished
        # (False); both are valid snapshots of a live service.
        assert isinstance(cancelled, bool)
        state = client.status(ids[-1])["state"]
        assert state in ("cancelled", "done", "running", "queued")


class TestRunDemo:
    def test_eight_concurrent_mixed_jobs_bitwise_identical(self, tmp_path):
        summary = run_demo(
            8,
            workers=2,
            max_batch=4,
            store_root=str(tmp_path / "store"),
            telemetry_dir=str(tmp_path),
        )
        assert summary["errors"] == []
        assert summary["done"] == 8
        assert summary["identical"] is True
        from repro.telemetry import read_manifest

        man = read_manifest(summary["manifest"])
        assert man["counters"]["service.jobs_done"] == 8.0
        assert man["summary"]["jobs"] == 8
