"""Tests for VAR order selection and graph-comparison metrics."""

import numpy as np
import pytest

from repro.datasets import random_sparse_coefs
from repro.metrics import (
    adjacency_hamming,
    degree_profile_distance,
    edge_jaccard,
)
from repro.var import (
    OrderSelection,
    VARProcess,
    information_criterion,
    select_order,
)


class TestOrderSelection:
    @pytest.mark.parametrize("true_d", [1, 2, 3])
    def test_recovers_true_order(self, true_d):
        rng = np.random.default_rng(true_d)
        coefs = random_sparse_coefs(
            4, true_d, density=0.2, target_radius=0.75, rng=rng
        )
        series = VARProcess(coefs).simulate(1500, rng)
        sel = select_order(series, max_order=5)
        assert sel.order == true_d
        assert isinstance(sel, OrderSelection)
        assert set(sel.scores) == {1, 2, 3, 4, 5}
        assert sel.scores[sel.order] == min(sel.scores.values())

    def test_bic_sparser_than_aic(self):
        """BIC penalizes harder, so it never picks a higher order."""
        rng = np.random.default_rng(9)
        coefs = random_sparse_coefs(3, 2, density=0.3, rng=rng)
        series = VARProcess(coefs).simulate(400, rng)
        bic = select_order(series, max_order=4, criterion="bic")
        aic = select_order(series, max_order=4, criterion="aic")
        assert bic.order <= aic.order

    def test_white_noise_prefers_smallest_order(self):
        rng = np.random.default_rng(10)
        series = rng.standard_normal((800, 3))
        sel = select_order(series, max_order=4, criterion="bic")
        assert sel.order == 1  # nothing to gain from more lags

    def test_information_criterion_penalty_ordering(self):
        rng = np.random.default_rng(11)
        series = VARProcess([np.eye(3) * 0.5]).simulate(500, rng)
        aic = information_criterion(series, 2, criterion="aic")
        bic = information_criterion(series, 2, criterion="bic")
        assert bic > aic  # log(T) > 2 for T > 7

    def test_validation(self):
        rng = np.random.default_rng(0)
        series = rng.standard_normal((50, 2))
        with pytest.raises(ValueError, match="criterion"):
            information_criterion(series, 1, criterion="magic")
        with pytest.raises(ValueError, match="max_order"):
            select_order(series, max_order=0)
        with pytest.raises(ValueError, match="too short"):
            select_order(series[:4], max_order=5)
        with pytest.raises(ValueError, match="2-D"):
            select_order(series[:, 0], max_order=2)


class TestGraphMetrics:
    def test_jaccard_identical(self):
        W = np.array([[0, 1.0], [0.5, 0]])
        assert edge_jaccard(W, W) == 1.0

    def test_jaccard_disjoint(self):
        a = np.array([[0, 1.0], [0, 0]])
        b = np.array([[0, 0], [1.0, 0]])
        assert edge_jaccard(a, b) == 0.0

    def test_jaccard_partial(self):
        a = np.zeros((3, 3)); a[0, 1] = a[1, 2] = 1.0
        b = np.zeros((3, 3)); b[0, 1] = b[2, 0] = 1.0
        assert edge_jaccard(a, b) == pytest.approx(1 / 3)

    def test_jaccard_empty_graphs(self):
        z = np.zeros((4, 4))
        assert edge_jaccard(z, z) == 1.0

    def test_jaccard_diagonal_excluded_by_default(self):
        a = np.eye(3)
        b = np.zeros((3, 3))
        assert edge_jaccard(a, b) == 1.0  # only self-loops differ
        assert edge_jaccard(a, b, include_diagonal=True) == 0.0

    def test_hamming(self):
        a = np.array([[0, 1.0], [0, 0]])
        b = np.array([[0, 0], [1.0, 0]])
        assert adjacency_hamming(a, b) == 2
        assert adjacency_hamming(a, a) == 0

    def test_degree_profile_invariant_to_relabeling(self):
        rng = np.random.default_rng(3)
        W = (rng.random((6, 6)) < 0.3).astype(float)
        np.fill_diagonal(W, 0.0)
        perm = rng.permutation(6)
        W2 = W[np.ix_(perm, perm)]
        assert degree_profile_distance(W, W2) == 0.0

    def test_degree_profile_detects_extra_edges(self):
        a = np.zeros((4, 4))
        b = np.zeros((4, 4)); b[0, 1] = b[0, 2] = 1.0
        assert degree_profile_distance(a, b) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            edge_jaccard(np.ones((2, 3)), np.ones((2, 3)))
        with pytest.raises(ValueError, match="mismatch"):
            adjacency_hamming(np.ones((2, 2)), np.ones((3, 3)))
        with pytest.raises(ValueError, match="mismatch"):
            degree_profile_distance(np.ones((2, 2)), np.ones((3, 3)))
