"""Tests for nonblocking operations (the paper's future-work direction)."""

import numpy as np
import pytest

from repro.simmpi import (
    CORI_KNL,
    MAX,
    SUM,
    SpmdError,
    TimeCategory,
    run_spmd,
)


class TestIallreduce:
    def test_result_matches_blocking(self):
        def prog(comm):
            nb = comm.iallreduce(np.full(3, float(comm.rank))).wait()
            b = comm.allreduce(np.full(3, float(comm.rank)))
            return nb, b

        res = run_spmd(4, prog)
        for nb, b in res.values:
            np.testing.assert_array_equal(nb, b)

    def test_overlap_hides_transfer_time(self):
        """Compute posted between iallreduce and wait absorbs the cost."""

        def overlapped(comm):
            req = comm.iallreduce(np.ones(4_000_000))  # ~32 MB
            comm.clock.charge_compute(1.0)
            req.wait()
            return comm.clock.breakdown[TimeCategory.COMMUNICATION]

        def blocking(comm):
            comm.allreduce(np.ones(4_000_000))
            comm.clock.charge_compute(1.0)
            return comm.clock.breakdown[TimeCategory.COMMUNICATION]

        over = run_spmd(4, overlapped, machine=CORI_KNL)
        block = run_spmd(4, blocking, machine=CORI_KNL)
        assert max(over.values) == 0.0
        assert min(block.values) > 0.0

    def test_no_overlap_costs_like_blocking(self):
        def prog(comm):
            comm.iallreduce(np.ones(1000)).wait()
            t_nb = comm.clock.breakdown[TimeCategory.COMMUNICATION]
            comm.allreduce(np.ones(1000))
            t_b = comm.clock.breakdown[TimeCategory.COMMUNICATION] - t_nb
            return t_nb, t_b

        res = run_spmd(3, prog, machine=CORI_KNL)
        for t_nb, t_b in res.values:
            assert t_nb == pytest.approx(t_b)

    def test_wait_idempotent(self):
        def prog(comm):
            req = comm.iallreduce(float(comm.rank), MAX)
            a = req.wait()
            b = req.wait()
            return a, b

        res = run_spmd(3, prog)
        assert all(v == (2.0, 2.0) for v in res.values)

    def test_test_probe(self):
        def prog(comm):
            req = comm.iallreduce(1.0, SUM)
            # After a barrier, everyone has posted, so test() must
            # succeed everywhere.
            comm.barrier()
            done, value = req.test()
            return done, value

        res = run_spmd(4, prog)
        assert all(v == (True, 4.0) for v in res.values)

    def test_multiple_outstanding_requests(self):
        def prog(comm):
            r1 = comm.iallreduce(np.array([1.0]))
            r2 = comm.iallreduce(np.array([10.0]))
            r3 = comm.iallgather(comm.rank)
            return r1.wait()[0], r2.wait()[0], r3.wait()

        res = run_spmd(3, prog)
        assert res.values[0] == (3.0, 30.0, [0, 1, 2])

    def test_posts_must_align_across_ranks(self):
        """Mismatched nonblocking posts meet in the same slot and fail."""

        def prog(comm):
            if comm.rank == 0:
                return comm.iallreduce(np.ones(2)).wait()
            return comm.iallreduce(np.ones(3)).wait()  # shape mismatch

        with pytest.raises(SpmdError):
            run_spmd(2, prog)


class TestIbarrier:
    def test_synchronizes_on_wait(self):
        def prog(comm):
            if comm.rank == 0:
                comm.clock.charge_compute(2.0)
            req = comm.ibarrier()
            req.wait()
            return comm.clock.now

        res = run_spmd(3, prog)
        assert all(t >= 2.0 for t in res.values)


class TestIsendIrecv:
    def test_roundtrip(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend({"k": 42}, dest=1)
                req.wait()
                return None
            req = comm.irecv(source=0)
            return req.wait()

        res = run_spmd(2, prog)
        assert res.values[1] == {"k": 42}

    def test_irecv_test_before_arrival(self):
        def prog(comm):
            if comm.rank == 1:
                req = comm.irecv(source=0, tag=5)
                first_probe = req.test()[0]
                comm.barrier()  # rank 0 sends before this barrier
                done, value = req.test()
                return first_probe, done, value
            comm.send("late", dest=1, tag=5)
            comm.barrier()
            return None

        res = run_spmd(2, prog)
        first_probe, done, value = res.values[1]
        # (first probe may race the send; after the barrier it must be there)
        assert done and value == "late"

    def test_irecv_validation(self):
        def prog(comm):
            comm.irecv(source=9)

        with pytest.raises(SpmdError, match="source"):
            run_spmd(2, prog)


class TestAsyncConsensusPattern:
    def test_pipelined_reduction_loop(self):
        """The future-work pattern: overlap iteration k's stats
        reduction with iteration k+1's local work."""

        def prog(comm):
            pending = None
            total = 0.0
            for it in range(5):
                local = float(comm.rank + it)
                if pending is not None:
                    total += pending.wait()
                pending = comm.iallreduce(local, SUM)
                comm.clock.charge_compute(0.01)  # overlapped work
            total += pending.wait()
            return total

        res = run_spmd(3, prog)
        # sum over it of sum over ranks (rank + it) = sum_it (3*it + 3)
        expected = sum(3 * it + 3 for it in range(5))
        assert all(v == expected for v in res.values)
