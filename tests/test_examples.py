"""Smoke tests: every shipped example runs end to end.

Each example is executed as a subprocess (exactly as a user would run
it) and checked for a zero exit code plus a marker string in its
output.  These keep the examples from silently rotting as the library
evolves.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: (script, args, expected output fragment)
CASES = [
    ("quickstart.py", [], "UoI_LASSO vs plain LASSO"),
    ("scaling_study.py", ["--ranks", "2"], "functional distributed UoI_LASSO"),
    ("trace_profile.py", ["--ranks", "2"], "timeline:"),
    ("neuro_connectivity.py", ["--electrodes", "10", "--samples", "400"],
     "inferred network"),
]

SLOW_CASES = [
    ("finance_granger.py", [], "edges:"),
    ("finance_granger.py", ["--rolling", "--companies", "6", "--verify"],
     "rolling snapshot:"),
    ("distributed_grid.py", [], "coef gap vs 1x1"),
]


def _run(script: str, args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=480,
    )


@pytest.mark.parametrize("script,args,marker", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(script, args, marker):
    proc = _run(script, args)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert marker in proc.stdout


@pytest.mark.slow
@pytest.mark.parametrize("script,args,marker", SLOW_CASES,
                         ids=[c[0] for c in SLOW_CASES])
def test_slow_example_runs(script, args, marker):
    proc = _run(script, args)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert marker in proc.stdout


def test_all_examples_are_covered():
    """Every example script has a smoke test."""
    shipped = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    tested = {c[0] for c in CASES} | {c[0] for c in SLOW_CASES}
    assert shipped == tested
